// Package cli holds the shared plumbing of the cmd/ tools: unified
// bad-flag handling (message + usage to stderr, exit 2, matching what
// the flag package does for unknown flags), the -trace/-metrics
// telemetry flags, the -faults injection flag and the
// -cpuprofile/-memprofile pprof flags every tool offers.
package cli

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"nestless/internal/faults"
	"nestless/internal/telemetry"
)

// BadFlag reports an invalid flag value the way the flag package itself
// reports an unknown flag: the message and the usage text go to stderr
// and the process exits 2.
func BadFlag(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

// Fatal reports a runtime (post-flag-parsing) failure and exits 1.
func Fatal(tool string, err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
	os.Exit(1)
}

// ParallelFlag registers -parallel on the default flag set; call it
// before flag.Parse. The returned pointer holds the requested worker
// count after parsing. Every tool validates it with CheckParallel.
func ParallelFlag() *int {
	return flag.Int("parallel", 1,
		"fan independent simulation runs out across N workers (results are byte-identical to -parallel 1; telemetry runs force 1)")
}

// CheckParallel rejects nonsensical worker counts via BadFlag.
func CheckParallel(n int) {
	if n < 1 {
		BadFlag("-parallel must be >= 1 (got %d)", n)
	}
}

// FaultsFlag registers -faults on the default flag set; call it before
// flag.Parse. The returned pointer holds the raw spec after parsing;
// resolve it with ParseFaults.
func FaultsFlag() *string {
	return flag.String("faults", "",
		"inject deterministic faults, e.g. 'qmp/device_add:fail:n=2;frame/*:drop:p=0.01' (see internal/faults for the grammar)")
}

// ParseFaults resolves a -faults value: empty means injection off
// (nil schedule), an invalid spec is a flag error (exit 2).
func ParseFaults(spec string) *faults.Schedule {
	if spec == "" {
		return nil
	}
	s, err := faults.ParseSpec(spec)
	if err != nil {
		BadFlag("-faults: %v", err)
	}
	return s
}

// Profile carries the -cpuprofile/-memprofile flag values of one tool.
type Profile struct {
	CPUPath string
	MemPath string
	cpuFile *os.File
}

// ProfileFlags registers -cpuprofile and -memprofile on the default
// flag set; call it before flag.Parse. The profiles are the raw
// material behind the indexed-scheduler optimisation work: run any
// tool with -cpuprofile and feed the output to `go tool pprof`.
func ProfileFlags() *Profile {
	p := &Profile{}
	flag.StringVar(&p.CPUPath, "cpuprofile", "",
		"write a pprof CPU profile of the run here (inspect with `go tool pprof`)")
	flag.StringVar(&p.MemPath, "memprofile", "",
		"write a pprof heap profile at exit here (inspect with `go tool pprof`)")
	return p
}

// Start begins CPU profiling if requested. Call it right after
// flag.Parse; pair with a deferred Stop.
func (p *Profile) Start(tool string) {
	if p.CPUPath == "" {
		return
	}
	f, err := os.Create(p.CPUPath)
	if err != nil {
		Fatal(tool, err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		Fatal(tool, err)
	}
	p.cpuFile = f
}

// Stop ends CPU profiling and, if requested, writes the heap profile.
// Errors are reported but do not change the exit status: the simulation
// results already printed are valid whether or not the profile landed.
func (p *Profile) Stop(tool string) {
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := p.cpuFile.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: -cpuprofile: %v\n", tool, err)
		}
		p.cpuFile = nil
	}
	if p.MemPath != "" {
		f, err := os.Create(p.MemPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: -memprofile: %v\n", tool, err)
			return
		}
		runtime.GC() // settle the heap so the profile shows live data
		werr := pprof.WriteHeapProfile(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(os.Stderr, "%s: -memprofile: %v\n", tool, werr)
		}
	}
}

// Telemetry carries the -trace/-metrics flag values of one tool.
type Telemetry struct {
	TracePath string
	Metrics   bool
	rec       *telemetry.Recorder
}

// TelemetryFlags registers -trace and -metrics on the default flag set;
// call it before flag.Parse.
func TelemetryFlags() *Telemetry {
	t := &Telemetry{}
	flag.StringVar(&t.TracePath, "trace", "",
		"write the run's trace here (.txt = compact text, otherwise Chrome trace-event JSON for chrome://tracing)")
	flag.BoolVar(&t.Metrics, "metrics", false,
		"print telemetry metrics tables after the run")
	return t
}

// Recorder returns the recorder backing the requested outputs, or nil
// when neither -trace nor -metrics was given — the zero-overhead
// telemetry-off path.
func (t *Telemetry) Recorder() *telemetry.Recorder {
	if t.TracePath == "" && !t.Metrics {
		return nil
	}
	if t.rec == nil {
		t.rec = telemetry.New()
	}
	return t.rec
}

// Emit writes whatever was requested: the trace file and/or the metrics
// tables (stdout, each preceded by a blank line).
func (t *Telemetry) Emit() error {
	if t.rec == nil {
		return nil
	}
	if t.TracePath != "" {
		f, err := os.Create(t.TracePath)
		if err != nil {
			return err
		}
		var werr error
		if strings.HasSuffix(t.TracePath, ".txt") {
			werr = t.rec.WriteTextTrace(f)
		} else {
			werr = t.rec.WriteChromeTrace(f)
		}
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
	}
	if t.Metrics {
		for _, tb := range t.rec.MetricsTables() {
			fmt.Println()
			tb.WriteText(os.Stdout)
		}
	}
	return nil
}

// EmitOrDie is Emit with Fatal error handling.
func (t *Telemetry) EmitOrDie(tool string) {
	if err := t.Emit(); err != nil {
		Fatal(tool, err)
	}
}
