// Package virtio models virtio-net devices with vhost backends, the way
// the paper's VMs attach to the host network (§5.1: "all network
// interfaces in the VMs are based on virtio and use Vhost in their
// backend").
//
// A NIC is a guest-side interface plus a vhost worker. Transmits from the
// guest pay the virtio descriptor-publish and kick (VM exit) costs on the
// guest's vCPU, then the vhost worker — a host-kernel thread whose time
// the host bills as sys on behalf of the VM — moves the frame to the
// host-side backend: a TAP on a host bridge for ordinary connectivity, or
// a Hostlo queue for the paper's multiplexed loopback. The reverse path
// mirrors this.
package virtio

import (
	"fmt"

	"nestless/internal/cpuacct"
	"nestless/internal/netsim"
)

// Backend is the host side of a NIC: where guest-transmitted frames land.
type Backend interface {
	// FromGuest receives a frame the vhost worker dequeued from the
	// guest TX ring; it runs on the vhost completion path.
	FromGuest(f *netsim.Frame)
	// Describe names the backend for diagnostics.
	Describe() string
}

// Queue is a virtqueue: a bounded descriptor ring. The simulator uses it
// for occupancy accounting and overload behaviour — a full ring drops the
// frame, as a saturated virtio device does when the guest outruns vhost.
type Queue struct {
	cap     int
	ring    []*netsim.Frame
	Dropped uint64
	MaxUsed int
}

// NewQueue returns a ring with the given descriptor capacity.
func NewQueue(capacity int) *Queue {
	if capacity < 1 {
		capacity = 1
	}
	return &Queue{cap: capacity}
}

// Push enqueues a frame; it reports false (and counts a drop) on a full
// ring.
func (q *Queue) Push(f *netsim.Frame) bool {
	if len(q.ring) >= q.cap {
		q.Dropped++
		return false
	}
	q.ring = append(q.ring, f)
	if len(q.ring) > q.MaxUsed {
		q.MaxUsed = len(q.ring)
	}
	return true
}

// Pop dequeues the oldest frame, or nil.
func (q *Queue) Pop() *netsim.Frame {
	if len(q.ring) == 0 {
		return nil
	}
	f := q.ring[0]
	copy(q.ring, q.ring[1:])
	q.ring = q.ring[:len(q.ring)-1]
	return f
}

// Len returns current occupancy.
func (q *Queue) Len() int { return len(q.ring) }

// Cap returns the ring capacity.
func (q *Queue) Cap() int { return q.cap }

// DefaultRing is the ring size used for VM NICs (large enough that
// windowed stream traffic never overflows, as on a well-tuned vhost).
const DefaultRing = 4096

// NIC is one virtio-net device: guest interface + vhost worker + host
// backend.
type NIC struct {
	Name  string
	Guest *netsim.Iface

	vhost   *netsim.CPU
	costs   *netsim.CostModel
	backend Backend

	tx, rx *Queue

	// guestCPU runs RX-side virtio processing (it is the guest
	// namespace's CPU; kept here so injection works even while the
	// interface migrates between namespaces, as BrFusion does).
	guestCPU *netsim.CPU
}

// Config carries NIC construction parameters.
type Config struct {
	Name    string
	MAC     netsim.MAC
	GuestNS *netsim.NetNS // namespace that initially owns the interface
	Vhost   *netsim.CPU   // the vhost worker thread
	Backend Backend
	Ring    int // descriptor ring size; 0 = DefaultRing
}

// New creates a virtio NIC and installs its guest interface (down until
// configured) into cfg.GuestNS.
func New(cfg Config) *NIC {
	ring := cfg.Ring
	if ring == 0 {
		ring = DefaultRing
	}
	n := &NIC{
		Name:     cfg.Name,
		vhost:    cfg.Vhost,
		costs:    cfg.GuestNS.Costs,
		backend:  cfg.Backend,
		tx:       NewQueue(ring),
		rx:       NewQueue(ring),
		guestCPU: cfg.GuestNS.CPU,
	}
	iface := cfg.GuestNS.AddIface(cfg.Name, cfg.MAC, cfg.GuestNS.Costs.EthMTU)
	iface.SetLink(guestLink{nic: n})
	n.Guest = iface
	return n
}

// SetGuestCPU rebinds RX-side processing to a different CPU context —
// used when the interface moves into a pod namespace whose billing
// entity differs.
func (n *NIC) SetGuestCPU(cpu *netsim.CPU) { n.guestCPU = cpu }

// Backend returns the host-side backend.
func (n *NIC) Backend() Backend { return n.backend }

// TXDropped and RXDropped report ring overflows.
func (n *NIC) TXDropped() uint64 { return n.tx.Dropped }

// RXDropped reports receive-ring overflows.
func (n *NIC) RXDropped() uint64 { return n.rx.Dropped }

// guestLink is the transmit side seen by the guest stack.
type guestLink struct{ nic *NIC }

func (l guestLink) Send(src *netsim.Iface, f *netsim.Frame) {
	n := l.nic
	ns := src.NS
	if ns == nil {
		return
	}
	size := f.PayloadLen()
	// Publish the descriptor and kick: guest vCPU time.
	charges := []netsim.Charge{
		{Cat: cpuacct.Sys, D: n.costs.VirtioTX.For(size)},
		{Cat: cpuacct.Sys, D: n.costs.VirtioKick.For(0)},
	}
	ns.CPU.RunCosts(charges, func() {
		if !n.tx.Push(f) {
			return // ring overflow: frame lost
		}
		// vhost dequeues and hands to the backend; host-kernel time.
		n.vhost.Run(cpuacct.Sys, n.costs.Vhost.For(size), func() {
			if g := n.tx.Pop(); g != nil {
				n.backend.FromGuest(g)
			}
		})
	})
}

// InjectToGuest is called by the backend to push a frame toward the
// guest: vhost moves it into the RX ring, then the guest pays the virtio
// receive cost and the frame enters the guest interface.
func (n *NIC) InjectToGuest(f *netsim.Frame) {
	size := f.PayloadLen()
	n.vhost.Run(cpuacct.Sys, n.costs.Vhost.For(size), func() {
		if !n.rx.Push(f) {
			return
		}
		n.guestCPU.RunCosts([]netsim.Charge{{Cat: cpuacct.Sys, D: n.costs.VirtioRX.For(size)}}, func() {
			if g := n.rx.Pop(); g != nil {
				n.Guest.Deliver(g)
			}
		})
	})
}

// TAPBackend bridges a NIC to a TAP interface in the host namespace —
// typically enslaved to a host bridge, which is how QEMU attaches VM
// NICs in the paper's setup.
type TAPBackend struct {
	TAP *netsim.Iface
	nic *NIC
}

// NewTAPBackend creates the host-side TAP for a NIC inside hostNS. The
// caller typically enslaves the returned interface to a bridge. Wire the
// backend into the NIC via Config.Backend by constructing in two steps:
//
//	b := virtio.NewTAPBackend(hostNS, "vnet3")
//	nic := virtio.New(virtio.Config{..., Backend: b})
//	b.Bind(nic)
func NewTAPBackend(hostNS *netsim.NetNS, name string) *TAPBackend {
	b := &TAPBackend{}
	tap := hostNS.AddIface(name, hostNS.Net.NewMAC(), hostNS.Costs.EthMTU)
	tap.SetLink(tapLink{b: b})
	tap.Up = true
	b.TAP = tap
	return b
}

// Bind attaches the backend to its NIC (frames arriving at the TAP flow
// to this NIC's guest side).
func (b *TAPBackend) Bind(n *NIC) { b.nic = n }

// FromGuest delivers a guest frame into the host stack via the TAP.
func (b *TAPBackend) FromGuest(f *netsim.Frame) {
	// The TAP receive path: softirq + bridge hook run in Deliver.
	b.TAP.Deliver(f)
}

// Describe names the backend.
func (b *TAPBackend) Describe() string {
	return fmt.Sprintf("tap:%s", b.TAP.Name)
}

// tapLink carries frames the host transmits out the TAP toward the guest.
type tapLink struct{ b *TAPBackend }

func (l tapLink) Send(src *netsim.Iface, f *netsim.Frame) {
	if l.b.nic == nil {
		return
	}
	l.b.nic.InjectToGuest(f)
}
