package virtio

import (
	"testing"
	"testing/quick"

	"nestless/internal/cpuacct"
	"nestless/internal/netsim"
	"nestless/internal/sim"
)

// testHost builds a host namespace with a bridge and returns
// (engine, world, hostNS, bridge).
func testHost() (*sim.Engine, *netsim.Net, *netsim.NetNS, *netsim.Bridge) {
	eng := sim.New(1)
	eng.MaxSteps = 20_000_000
	n := netsim.NewNet(eng)
	hostCPU := netsim.NewCPU(eng, "host", 1, netsim.BillTo(n.Acct, "host", ""))
	host := n.NewNS("host", hostCPU)
	br := netsim.NewBridge(host, "virbr0")
	br.Iface().SetAddr(netsim.IP(192, 168, 122, 1), netsim.MustPrefix(netsim.IP(192, 168, 122, 0), 24))
	return eng, n, host, br
}

// attachGuest creates a guest namespace with a virtio NIC on the bridge.
func attachGuest(n *netsim.Net, host *netsim.NetNS, br *netsim.Bridge, name string, addr netsim.IPv4) (*netsim.NetNS, *NIC) {
	gCPU := netsim.NewCPU(n.Eng, name, 1, netsim.BillTo(n.Acct, "guest/"+name, "vm/"+name))
	guest := n.NewNS(name, gCPU)
	vhost := netsim.NewCPU(n.Eng, "vhost-"+name, 1, netsim.BillTo(n.Acct, "host", ""))
	b := NewTAPBackend(host, "vnet-"+name)
	nic := New(Config{Name: "eth0", MAC: n.NewMAC(), GuestNS: guest, Vhost: vhost, Backend: b})
	b.Bind(nic)
	br.AddPort(b.TAP)
	nic.Guest.SetAddr(addr, netsim.MustPrefix(netsim.IP(192, 168, 122, 0), 24))
	nic.Guest.Up = true
	return guest, nic
}

func TestQueueSemantics(t *testing.T) {
	q := NewQueue(2)
	f := &netsim.Frame{}
	if !q.Push(f) || !q.Push(f) {
		t.Fatal("pushes within capacity failed")
	}
	if q.Push(f) {
		t.Fatal("push over capacity succeeded")
	}
	if q.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", q.Dropped)
	}
	if q.Len() != 2 || q.Cap() != 2 || q.MaxUsed != 2 {
		t.Fatalf("Len/Cap/MaxUsed = %d/%d/%d", q.Len(), q.Cap(), q.MaxUsed)
	}
	if q.Pop() == nil || q.Pop() == nil || q.Pop() != nil {
		t.Fatal("pop sequence wrong")
	}
}

// Property: queue is FIFO and never exceeds capacity.
func TestQueueFIFOProperty(t *testing.T) {
	prop := func(ops []bool, capRaw uint8) bool {
		capN := int(capRaw%16) + 1
		q := NewQueue(capN)
		next, expect := 0, 0
		for _, push := range ops {
			if push {
				f := &netsim.Frame{Packet: &netsim.Packet{PayloadLen: next}}
				if q.Push(f) {
					next++
				}
			} else if f := q.Pop(); f != nil {
				if f.Packet.PayloadLen != expect {
					return false
				}
				expect++
			}
			if q.Len() > capN {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGuestToHostTraffic(t *testing.T) {
	eng, n, host, br := testHost()
	guest, _ := attachGuest(n, host, br, "vm1", netsim.IP(192, 168, 122, 10))

	var got int
	if _, err := host.BindUDP(6000, func(p *netsim.Packet) { got = p.PayloadLen }); err != nil {
		t.Fatal(err)
	}
	s, _ := guest.BindUDP(0, nil)
	s.SendTo(netsim.IP(192, 168, 122, 1), 6000, 512, nil)
	eng.Run()
	if got != 512 {
		t.Fatalf("host received %d, want 512", got)
	}
	// vhost time lands on the host as sys.
	if n.Acct.Usage("host").Of(cpuacct.Sys) == 0 {
		t.Error("vhost work not billed to host sys")
	}
	// Guest vCPU work appears as vm guest time.
	if n.Acct.Usage("vm/vm1").Of(cpuacct.Guest) == 0 {
		t.Error("guest work not billed as guest time")
	}
}

func TestHostToGuestTraffic(t *testing.T) {
	eng, n, host, br := testHost()
	guest, _ := attachGuest(n, host, br, "vm1", netsim.IP(192, 168, 122, 10))

	var got int
	if _, err := guest.BindUDP(7000, func(p *netsim.Packet) { got = p.PayloadLen }); err != nil {
		t.Fatal(err)
	}
	s, _ := host.BindUDP(0, nil)
	s.SendTo(netsim.IP(192, 168, 122, 10), 7000, 256, nil)
	eng.Run()
	if got != 256 {
		t.Fatalf("guest received %d, want 256", got)
	}
}

func TestVMToVMViaBridge(t *testing.T) {
	eng, n, host, br := testHost()
	g1, _ := attachGuest(n, host, br, "vm1", netsim.IP(192, 168, 122, 10))
	g2, _ := attachGuest(n, host, br, "vm2", netsim.IP(192, 168, 122, 11))

	var reply bool
	if _, err := g2.BindUDP(5353, func(p *netsim.Packet) {
		g2s, _ := g2.BindUDP(0, nil)
		g2s.SendTo(p.Src, p.SrcPort, 100, nil)
	}); err != nil {
		t.Fatal(err)
	}
	s, _ := g1.BindUDP(0, func(p *netsim.Packet) { reply = true })
	s.SendTo(netsim.IP(192, 168, 122, 11), 5353, 100, nil)
	eng.Run()
	if !reply {
		t.Fatal("VM-to-VM round trip failed")
	}
}

func TestStreamOverVirtio(t *testing.T) {
	eng, n, host, br := testHost()
	guest, _ := attachGuest(n, host, br, "vm1", netsim.IP(192, 168, 122, 10))

	const total = 512 * 1024
	var got int
	if _, err := guest.ListenStream(80, func(c *netsim.StreamConn) {
		c.OnMessage = func(size int, _ interface{}, _ sim.Time) { got += size }
	}); err != nil {
		t.Fatal(err)
	}
	host.DialStream(netsim.IP(192, 168, 122, 10), 80, func(c *netsim.StreamConn) {
		for i := 0; i < 8; i++ {
			c.SendMessage(total/8, nil)
		}
	})
	eng.Run()
	if got != total {
		t.Fatalf("stream over virtio: got %d, want %d", got, total)
	}
}

func TestRingOverflowDropsFrames(t *testing.T) {
	eng := sim.New(1)
	n := netsim.NewNet(eng)
	// Make the vhost worker far slower than the guest TX path so the
	// 2-descriptor ring genuinely backs up.
	n.Costs.Vhost.PerPacket = 1000 * n.Costs.Vhost.PerPacket
	hostCPU := netsim.NewCPU(eng, "host", 1, nil)
	host := n.NewNS("host", hostCPU)
	br := netsim.NewBridge(host, "virbr0")
	br.Iface().SetAddr(netsim.IP(192, 168, 122, 1), netsim.MustPrefix(netsim.IP(192, 168, 122, 0), 24))

	gCPU := netsim.NewCPU(eng, "vm1", 1, nil)
	guest := n.NewNS("vm1", gCPU)
	// Deliberately slow vhost and a tiny ring: TX bursts overflow.
	vhost := netsim.NewCPU(eng, "vhost", 1, nil)
	b := NewTAPBackend(host, "vnet0")
	nic := New(Config{Name: "eth0", MAC: n.NewMAC(), GuestNS: guest, Vhost: vhost, Backend: b, Ring: 2})
	b.Bind(nic)
	br.AddPort(b.TAP)
	nic.Guest.SetAddr(netsim.IP(192, 168, 122, 10), netsim.MustPrefix(netsim.IP(192, 168, 122, 0), 24))
	nic.Guest.Up = true
	guest.SetARP(netsim.IP(192, 168, 122, 1), br.Iface().MAC)

	s, _ := guest.BindUDP(0, nil)
	for i := 0; i < 64; i++ {
		s.SendTo(netsim.IP(192, 168, 122, 1), 9, 1400, nil)
	}
	eng.Run()
	if nic.TXDropped() == 0 {
		t.Fatal("tiny ring under burst did not drop")
	}
}

func TestNICDescribe(t *testing.T) {
	_, _, host, _ := testHost()
	b := NewTAPBackend(host, "vnetX")
	if b.Describe() != "tap:vnetX" {
		t.Fatalf("Describe = %q", b.Describe())
	}
}
