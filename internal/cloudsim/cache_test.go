package cloudsim

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// randGroup builds a random canonical candidate group: VMs of one
// catalog type filled with random small containers, the shape
// optimizeGroups hands to the cache.
func randGroup(r *rand.Rand, tag string) []PlacedVM {
	cat := Catalog()
	typ := r.Intn(len(cat))
	var vms []PlacedVM
	for v, nv := 0, 1+r.Intn(4); v < nv; v++ {
		var items []PlacedItem
		for i, ni := 0, r.Intn(5); i < ni; i++ {
			items = append(items, PlacedItem{
				Pod: fmt.Sprintf("%s-p%d-%d", tag, v, i),
				CPU: float64(1+r.Intn(8)) / 40,
				Mem: float64(1+r.Intn(8)) / 40,
			})
		}
		vms = append(vms, PlacedVM{Type: typ, Items: items})
	}
	CanonicalizePlacement(vms)
	return vms
}

// shuffled deep-copies a group with VM and item order permuted — the
// same multiset as churn would rediscover it in a different order.
func shuffled(r *rand.Rand, vms []PlacedVM) []PlacedVM {
	out := copyPlacement(vms)
	r.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	for _, pv := range out {
		r.Shuffle(len(pv.Items), func(i, j int) { pv.Items[i], pv.Items[j] = pv.Items[j], pv.Items[i] })
	}
	return out
}

// TestCanonicalizePlacementOrderInvariant: any permutation of the same
// VM/item multiset canonicalizes to the identical sequence — the
// property that makes the cache key content-addressed.
func TestCanonicalizePlacementOrderInvariant(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		g := randGroup(r, fmt.Sprintf("t%d", trial))
		p := shuffled(r, g)
		CanonicalizePlacement(p)
		// equalPlacement, not DeepEqual: copyPlacement turns a nil item
		// list into an empty one, which is the same placement.
		if !equalPlacement(g, p) {
			t.Fatalf("trial %d: canonical forms differ:\n%v\nvs\n%v", trial, g, p)
		}
		if GroupKey(g) != GroupKey(p) {
			t.Fatalf("trial %d: keys differ for identical canonical groups", trial)
		}
	}
}

// TestPackCacheHitMatchesFresh is the memoization property the whole
// cache rests on: for a canonicalized group, a cache hit returns
// exactly what a fresh OptimizeHostlo call on the probe would — even
// when the probe was discovered in a different order.
func TestPackCacheHitMatchesFresh(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	pc := NewPackCache(64)
	for trial := 0; trial < 100; trial++ {
		g := randGroup(r, fmt.Sprintf("h%d", trial))
		out := OptimizeHostlo(g, Catalog())
		pc.Put(g, out)
		probe := shuffled(r, g)
		CanonicalizePlacement(probe)
		cached, ok := pc.Get(probe)
		if !ok {
			t.Fatalf("trial %d: canonical probe missed", trial)
		}
		fresh := OptimizeHostlo(probe, Catalog())
		if !reflect.DeepEqual(cached, fresh) {
			t.Fatalf("trial %d: cached placement differs from fresh optimize:\n%v\nvs\n%v",
				trial, cached, fresh)
		}
	}
	hits, misses, _ := pc.Stats()
	if hits != 100 || misses != 0 {
		t.Fatalf("stats: %d hits %d misses, want 100/0", hits, misses)
	}
}

// TestPackCacheLRUEviction pins the bounded-LRU discipline: capacity is
// a hard bound, the least recently used entry is the one evicted, and
// Get refreshes recency.
func TestPackCacheLRUEviction(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	pc := NewPackCache(2)
	a := randGroup(r, "a")
	b := randGroup(r, "b")
	c := randGroup(r, "c")
	pc.Put(a, OptimizeHostlo(a, Catalog()))
	pc.Put(b, OptimizeHostlo(b, Catalog()))
	// Touch a so b becomes the LRU entry.
	if _, ok := pc.Get(a); !ok {
		t.Fatal("a missing before eviction")
	}
	pc.Put(c, OptimizeHostlo(c, Catalog()))
	if pc.Len() != 2 {
		t.Fatalf("len %d after eviction, want 2", pc.Len())
	}
	if _, ok := pc.Get(b); ok {
		t.Fatal("b survived — LRU should have evicted it")
	}
	if _, ok := pc.Get(a); !ok {
		t.Fatal("a evicted despite being recently used")
	}
	if _, ok := pc.Get(c); !ok {
		t.Fatal("c missing right after install")
	}
	if _, _, ev := pc.Stats(); ev != 1 {
		t.Fatalf("evictions %d, want 1", ev)
	}
}

// TestPackCacheCollisionVerify pins the exact-input check: even when
// the 128-bit key matches, a probe whose content differs from the
// stored input must miss — a hash collision can never smuggle in the
// wrong placement. The collision is forged by installing an entry
// under the probe's key with different content.
func TestPackCacheCollisionVerify(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	pc := NewPackCache(4)
	stored := randGroup(r, "x")
	probe := copyPlacement(stored)
	// Perturb the probe's content without changing counts, then forge
	// the collision: map the probe's key to the stored entry.
	probe[0].Items = append(probe[0].Items, PlacedItem{Pod: "ghost", CPU: 0.05, Mem: 0.05})
	CanonicalizePlacement(probe)
	e := &packEntry{key: GroupKey(probe), input: copyPlacement(stored), output: nil}
	pc.m[e.key] = e
	pc.pushFront(e)
	if _, ok := pc.Get(probe); ok {
		t.Fatal("colliding probe hit — exact-input verification is broken")
	}
	if _, misses, _ := pc.Stats(); misses != 1 {
		t.Fatalf("misses %d, want 1", misses)
	}
}

// TestPackCachePutRefresh: re-installing an existing key replaces the
// entry in place without growing the cache.
func TestPackCachePutRefresh(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	pc := NewPackCache(4)
	g := randGroup(r, "r")
	out1 := OptimizeHostlo(g, Catalog())
	pc.Put(g, out1)
	pc.Put(g, out1)
	if pc.Len() != 1 {
		t.Fatalf("len %d after double install, want 1", pc.Len())
	}
}

// TestNilPackCacheIsAlwaysMiss: a nil cache is the documented off
// switch — every operation is a safe no-op.
func TestNilPackCacheIsAlwaysMiss(t *testing.T) {
	var pc *PackCache
	r := rand.New(rand.NewSource(19))
	g := randGroup(r, "n")
	pc.Put(g, nil)
	if _, ok := pc.Get(g); ok {
		t.Fatal("nil cache hit")
	}
	if pc.Len() != 0 {
		t.Fatal("nil cache non-empty")
	}
	if h, m, e := pc.Stats(); h != 0 || m != 0 || e != 0 {
		t.Fatal("nil cache has stats")
	}
}
