package cloudsim

import (
	"testing"
	"testing/quick"

	"nestless/internal/trace"
)

func TestCatalogMatchesTable2(t *testing.T) {
	c := Catalog()
	if len(c) != 6 {
		t.Fatalf("catalog entries = %d, want 6", len(c))
	}
	if c[0].Name != "large" || c[0].VCPU != 2 || c[0].PricePerH != 0.112 {
		t.Fatalf("large row wrong: %+v", c[0])
	}
	if c[5].Name != "24xlarge" || c[5].VCPU != 96 || c[5].PricePerH != 5.376 || c[5].RelCPU != 1 {
		t.Fatalf("24xlarge row wrong: %+v", c[5])
	}
	// The motivating example from §2: a 6 vCPU / 24 GiB pod needs a
	// 2xlarge ($0.448/h) whole, but large + xlarge cost $0.336/h.
	if got := c[1].PricePerH + c[0].PricePerH; got != 0.336 {
		t.Fatalf("large+xlarge = %v, want 0.336", got)
	}
}

func TestCheapestFitting(t *testing.T) {
	c := Catalog()
	if i := cheapestFitting(c, 0.01, 0.01); c[i].Name != "large" {
		t.Errorf("tiny pod got %s", c[i].Name)
	}
	if i := cheapestFitting(c, 0.06, 0.02); c[i].Name != "2xlarge" {
		t.Errorf("6%% CPU pod got %s", c[i].Name)
	}
	if i := cheapestFitting(c, 2.0, 0.1); i != -1 {
		t.Error("oversized request fit somewhere")
	}
}

// podOf builds a pod from (cpu, mem) container pairs.
func podOf(id string, reqs ...[2]float64) trace.Pod {
	p := trace.Pod{ID: id}
	for _, r := range reqs {
		p.Containers = append(p.Containers, trace.Container{CPU: r[0], Mem: r[1]})
	}
	return p
}

func TestKubernetesPacksWholePods(t *testing.T) {
	c := Catalog()
	// The §2 example: one pod of 6 vCPUs (0.0625 rel) and 24 GiB
	// (0.0625 rel) — Kubernetes must buy a 2xlarge.
	u := trace.User{ID: 1, Pods: []trace.Pod{
		podOf("p", [2]float64{0.03125, 0.03125}, [2]float64{0.03125, 0.03125}),
	}}
	f, err := packKubernetes(u, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.vms) != 1 || c[f.vms[0].typ].Name != "2xlarge" {
		t.Fatalf("kube bought %d VMs, first type %s", len(f.vms), c[f.vms[0].typ].Name)
	}
	if f.cost() != 0.448 {
		t.Fatalf("kube cost = %v, want 0.448", f.cost())
	}
}

func TestHostloSplitsSavesMoney(t *testing.T) {
	c := Catalog()
	// Two pods, each 3 vCPU + 12 GiB (0.03125 rel): kube puts both on
	// one 2xlarge? Both fit: 0.0625 total ≤ 0.0833 — packed together,
	// no savings. Make them 4 vCPU each so the pair does not share:
	// each pod 0.0417 rel → one xlarge each ($0.448 total); hostlo can
	// split across... they are single-container pods; splitting cannot
	// help — savings come from multi-container pods.
	u := trace.User{ID: 1, Pods: []trace.Pod{
		// One pod of 6 × 1 vCPU containers (6 vCPU / 24 GiB total):
		// whole-pod needs a 2xlarge ($0.448); containers split across a
		// large + xlarge cost $0.336 (§2's motivating arithmetic).
		podOf("p",
			[2]float64{0.0104, 0.0104}, [2]float64{0.0104, 0.0104},
			[2]float64{0.0104, 0.0104}, [2]float64{0.0104, 0.0104},
			[2]float64{0.0104, 0.0104}, [2]float64{0.0104, 0.0104}),
	}}
	res, err := SimulateUser(u, c)
	if err != nil {
		t.Fatal(err)
	}
	if res.KubeCostPerH != 0.448 {
		t.Fatalf("kube cost = %v, want 0.448", res.KubeCostPerH)
	}
	if res.HostloCostPerH >= res.KubeCostPerH {
		t.Fatalf("hostlo cost %v did not improve on kube %v", res.HostloCostPerH, res.KubeCostPerH)
	}
}

func TestHostloNeverCostsMore(t *testing.T) {
	users := trace.Generate(trace.DefaultConfig(99))
	res := Simulate(users, Catalog())
	if len(res.Users) == 0 {
		t.Fatal("no users simulated")
	}
	for _, u := range res.Users {
		if u.HostloCostPerH > u.KubeCostPerH+1e-9 {
			t.Fatalf("user %d: hostlo %v > kube %v", u.UserID, u.HostloCostPerH, u.KubeCostPerH)
		}
	}
}

func TestHostloNeverOvercommits(t *testing.T) {
	users := trace.Generate(trace.DefaultConfig(7))
	c := Catalog()
	for _, u := range users[:100] {
		base, err := packKubernetes(u, c)
		if err != nil {
			continue
		}
		improved := improveHostlo(base)
		for _, v := range improved.vms {
			if v.usedCPU > c[v.typ].RelCPU+1e-9 || v.usedMem > c[v.typ].RelMem+1e-9 {
				t.Fatalf("user %d: VM %s overcommitted (%v/%v cpu, %v/%v mem)",
					u.ID, c[v.typ].Name, v.usedCPU, c[v.typ].RelCPU, v.usedMem, c[v.typ].RelMem)
			}
		}
		// No container lost or duplicated.
		want := 0
		for _, p := range u.Pods {
			want += len(p.Containers)
		}
		got := 0
		for _, v := range improved.vms {
			got += len(v.items)
		}
		if got != want {
			t.Fatalf("user %d: %d containers after improve, want %d", u.ID, got, want)
		}
	}
}

// Property: random small populations keep both invariants — cost never
// increases and capacity is never exceeded.
func TestPackingInvariantsProperty(t *testing.T) {
	c := Catalog()
	prop := func(seed int64, nPods uint8) bool {
		cfg := trace.GenConfig{Seed: seed, Users: 1, MeanPodsPerUser: float64(nPods%8) + 1, HeavyUserFraction: 0.5}
		users := trace.Generate(cfg)
		base, err := packKubernetes(users[0], c)
		if err != nil {
			return true
		}
		improved := improveHostlo(base)
		if improved.cost() > base.cost()+1e-9 {
			return false
		}
		for _, v := range improved.vms {
			if v.usedCPU > c[v.typ].RelCPU+1e-9 || v.usedMem > c[v.typ].RelMem+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSimulateCountsSkippedUsers(t *testing.T) {
	users := []trace.User{
		{ID: 0, Pods: []trace.Pod{podOf("ok", [2]float64{0.01, 0.01})}},
		// One pod wider than the largest machine: whole-pod placement is
		// infeasible, so the user cannot be priced.
		{ID: 1, Pods: []trace.Pod{podOf("toobig", [2]float64{0.7, 0.7}, [2]float64{0.7, 0.7})}},
		{ID: 2, Pods: []trace.Pod{podOf("ok2", [2]float64{0.02, 0.02})}},
	}
	res := Simulate(users, Catalog())
	if len(res.Users) != 2 || res.Skipped != 1 {
		t.Fatalf("got %d priced / %d skipped, want 2 / 1", len(res.Users), res.Skipped)
	}
	par := SimulateParallel(users, Catalog(), 4)
	if par.Skipped != res.Skipped || len(par.Users) != len(res.Users) {
		t.Fatalf("parallel skip accounting diverged: %d/%d vs %d/%d",
			len(par.Users), par.Skipped, len(res.Users), res.Skipped)
	}
}

// TestOptimizeHostloMatchesInternalPass: the exported optimizer over an
// order-preserving conversion must reproduce the internal static
// pipeline exactly — same cost, same VM types in the same order.
func TestOptimizeHostloMatchesInternalPass(t *testing.T) {
	c := Catalog()
	users := trace.Generate(trace.DefaultConfig(3))
	checked := 0
	for _, u := range users[:60] {
		base, err := packKubernetes(u, c)
		if err != nil {
			continue
		}
		improved := improveHostlo(base)
		got := OptimizeHostlo(fromFleet(base), c)
		if len(got) != len(improved.vms) {
			t.Fatalf("user %d: exported optimizer produced %d VMs, internal %d", u.ID, len(got), len(improved.vms))
		}
		for i := range got {
			if got[i].Type != improved.vms[i].typ {
				t.Fatalf("user %d VM %d: type %d vs %d", u.ID, i, got[i].Type, improved.vms[i].typ)
			}
		}
		if gc, ic := PlacementCostPerH(got, c), improved.cost(); gc != ic {
			t.Fatalf("user %d: cost %v vs %v", u.ID, gc, ic)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no users checked")
	}
}

// TestOptimizeHostloSplitsMotivatingExample: §2's arithmetic through
// the exported API — a 2xlarge holding six 1-vCPU containers re-packs
// into large + xlarge.
func TestOptimizeHostloSplitsMotivatingExample(t *testing.T) {
	c := Catalog()
	in := []PlacedVM{{Type: 2}} // 2xlarge
	for i := 0; i < 6; i++ {
		in[0].Items = append(in[0].Items, PlacedItem{Pod: "p", CPU: 0.0104, Mem: 0.0104})
	}
	out := OptimizeHostlo(in, c)
	if got := PlacementCostPerH(out, c); got != 0.336 {
		t.Fatalf("optimized cost %v, want 0.336 (large + xlarge)", got)
	}
	items := 0
	for _, v := range out {
		items += len(v.Items)
	}
	if items != 6 {
		t.Fatalf("%d items after optimize, want 6", items)
	}
}

func TestPopulationStats(t *testing.T) {
	users := trace.Generate(trace.DefaultConfig(42))
	res := Simulate(users, Catalog())
	if got := len(res.Users); got < 400 {
		t.Fatalf("only %d users simulated", got)
	}
	savers := res.SaversFraction()
	t.Logf("savers: %.1f%% (paper ≈ 11.4%%)", savers*100)
	t.Logf("big savers among savers: %.1f%% (paper ≈ 66.7%%)", res.BigSaversFractionOfSavers()*100)
	t.Logf("max relative savings: %.1f%% (paper ≈ 40%%)", res.MaxRelSavings()*100)
	abs, rel := res.MaxAbsSavings()
	t.Logf("max absolute savings: $%.2f/h at %.0f%% (paper ≈ $237/h, 35%%)", abs, rel*100)

	if savers <= 0 {
		t.Fatal("nobody saves; the Hostlo pass is inert")
	}
	if res.MaxRelSavings() <= 0.05 {
		t.Fatal("max savings implausibly small")
	}
	h := res.SavingsHistogram(20)
	if h.Total() == 0 {
		t.Fatal("empty savings histogram")
	}
	kube, hostlo := res.TotalCosts()
	if hostlo > kube {
		t.Fatal("population cost increased")
	}
	top := res.TopSavers(5)
	if len(top) != 5 || top[0].SavingsRel() < top[4].SavingsRel() {
		t.Fatal("TopSavers ordering wrong")
	}
}
