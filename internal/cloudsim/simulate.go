package cloudsim

import (
	"sort"

	"nestless/internal/parallel"
	"nestless/internal/sim"
	"nestless/internal/trace"
)

// UserResult prices one user's fleet both ways.
type UserResult struct {
	UserID         int
	KubeCostPerH   float64
	HostloCostPerH float64
	KubeVMs        int
	HostloVMs      int
}

// SavingsAbs returns dollars saved per hour.
func (r UserResult) SavingsAbs() float64 { return r.KubeCostPerH - r.HostloCostPerH }

// SavingsRel returns the relative cost reduction (0..1).
func (r UserResult) SavingsRel() float64 {
	if r.KubeCostPerH <= 0 {
		return 0
	}
	return r.SavingsAbs() / r.KubeCostPerH
}

// SimulateUser prices one user under the paper's most-requested policy.
func SimulateUser(u trace.User, catalog []VMType) (UserResult, error) {
	return SimulateUserPolicy(u, catalog, MostRequested)
}

// SimulateUserPolicy prices one user under the given scheduler policy
// (the scheduler-policy ablation).
func SimulateUserPolicy(u trace.User, catalog []VMType, pol Policy) (UserResult, error) {
	base, err := packKubernetesPolicy(u, catalog, pol)
	if err != nil {
		return UserResult{}, err
	}
	improved := improveHostlo(base)
	return UserResult{
		UserID:         u.ID,
		KubeCostPerH:   base.cost(),
		HostloCostPerH: improved.cost(),
		KubeVMs:        len(base.vms),
		HostloVMs:      len(improved.vms),
	}, nil
}

// PopulationResult aggregates a user population (Fig. 9).
type PopulationResult struct {
	Users []UserResult
	// Skipped counts users excluded from the pricing because one of
	// their pods exceeds the largest VM (whole-pod placement is
	// infeasible, so neither cost exists). Reports surface it so an
	// aggressive workload cannot silently shrink the population.
	Skipped int
}

// Simulate prices every user; users whose pods exceed the largest VM are
// counted in Skipped rather than priced (cannot exist under whole-pod
// placement).
func Simulate(users []trace.User, catalog []VMType) PopulationResult {
	return SimulateParallel(users, catalog, 1)
}

// SimulateParallel is Simulate fanned out across workers. Users are
// fully independent, so each is priced in its own job; merging keeps
// trace order and counts errored users exactly like the serial loop,
// making the result identical for any worker count.
func SimulateParallel(users []trace.User, catalog []VMType, workers int) PopulationResult {
	type slot struct {
		r  UserResult
		ok bool
	}
	slots := make([]slot, len(users))
	parallel.Run(len(users), workers, func(i int) {
		r, err := SimulateUser(users[i], catalog)
		slots[i] = slot{r: r, ok: err == nil}
	})
	out := PopulationResult{Users: make([]UserResult, 0, len(users))}
	for _, s := range slots {
		if s.ok {
			out.Users = append(out.Users, s.r)
		} else {
			out.Skipped++
		}
	}
	return out
}

// SaversFraction returns the share of users with any savings — the
// paper's "11.4% of the clients".
func (p PopulationResult) SaversFraction() float64 {
	if len(p.Users) == 0 {
		return 0
	}
	n := 0
	for _, u := range p.Users {
		if u.SavingsAbs() > 1e-9 {
			n++
		}
	}
	return float64(n) / float64(len(p.Users))
}

// BigSaversFractionOfSavers returns, among savers, the share saving more
// than 5 % — the paper's "66.7%".
func (p PopulationResult) BigSaversFractionOfSavers() float64 {
	savers, big := 0, 0
	for _, u := range p.Users {
		if u.SavingsAbs() > 1e-9 {
			savers++
			if u.SavingsRel() > 0.05 {
				big++
			}
		}
	}
	if savers == 0 {
		return 0
	}
	return float64(big) / float64(savers)
}

// MaxRelSavings returns the best relative saving — the paper's "about 40%".
func (p PopulationResult) MaxRelSavings() float64 {
	var m float64
	for _, u := range p.Users {
		if r := u.SavingsRel(); r > m {
			m = r
		}
	}
	return m
}

// MaxAbsSavings returns the best $/h saving and that user's relative
// saving — the paper's "237 $/h, which represents a 35% reduction".
func (p PopulationResult) MaxAbsSavings() (dollarsPerH, rel float64) {
	for _, u := range p.Users {
		if a := u.SavingsAbs(); a > dollarsPerH {
			dollarsPerH, rel = a, u.SavingsRel()
		}
	}
	return dollarsPerH, rel
}

// SavingsHistogram buckets relative savings of savers into n bins over
// (0, 1], Fig. 9's frequency axis.
func (p PopulationResult) SavingsHistogram(n int) *sim.Histogram {
	h := sim.NewHistogram(0, 1.0000001, n)
	for _, u := range p.Users {
		if u.SavingsAbs() > 1e-9 {
			h.Add(u.SavingsRel())
		}
	}
	return h
}

// TopSavers returns the k users with the highest relative savings.
func (p PopulationResult) TopSavers(k int) []UserResult {
	users := append([]UserResult(nil), p.Users...)
	sort.SliceStable(users, func(a, b int) bool {
		return users[a].SavingsRel() > users[b].SavingsRel()
	})
	if k > len(users) {
		k = len(users)
	}
	return users[:k]
}

// TotalCosts sums population costs both ways.
func (p PopulationResult) TotalCosts() (kube, hostlo float64) {
	for _, u := range p.Users {
		kube += u.KubeCostPerH
		hostlo += u.HostloCostPerH
	}
	return kube, hostlo
}
