package cloudsim

import (
	"fmt"
	"sort"
	"strings"
)

// The packing cache: churn in a cluster lifecycle run repeatedly
// re-optimizes near-identical sub-fleets (a pod departs, its
// neighborhood re-packs, the same neighborhood comes back a few passes
// later), so optimizer sub-solutions are memoizable. The cache maps the
// canonical form of a candidate group — VMs and items sorted into a
// content-determined total order — to the improved placement
// OptimizeHostlo produced for it.
//
// Correctness rests on two properties:
//
//   - The key is derived from the commutative VMSig multiset of the
//     group, but a hit is only declared after an exact item-by-item
//     comparison of the stored canonical input against the probe — a
//     hash collision can never smuggle in the wrong placement.
//
//   - Callers canonicalize the group before consulting the cache
//     (CanonicalizePlacement), which makes the optimizer's output a
//     pure function of the group's content rather than its discovery
//     order. That is what lets a memoized result substitute for a
//     fresh OptimizeHostlo call byte for byte — and it holds whether
//     the cache is on or off, which is how cache-on and cache-off runs
//     stay identical.
//
// The cache is deliberately not safe for concurrent use: each cluster
// world owns one (parallel population fan-outs and shard worlds never
// share), and the cluster probes/installs serially around its parallel
// group fan-out so LRU order stays deterministic.

// CanonicalizePlacement sorts a placement into its canonical order, in
// place: items within each VM by (Pod, CPU, Mem), then VMs by content
// (type, item count, lexicographic items). Two groups holding the same
// VM multiset canonicalize to the same sequence regardless of the
// order churn discovered them in.
func CanonicalizePlacement(vms []PlacedVM) {
	for _, pv := range vms {
		sortItemsCanonical(pv.Items)
	}
	sort.Slice(vms, func(a, b int) bool { return cmpPlacedVM(vms[a], vms[b]) < 0 })
}

// sortItemsCanonical orders items by (Pod, CPU, Mem) — an insertion
// sort, because candidate-node item lists are short and this must not
// allocate.
func sortItemsCanonical(items []PlacedItem) {
	for i := 1; i < len(items); i++ {
		it := items[i]
		j := i - 1
		for j >= 0 && cmpPlacedItem(items[j], it) > 0 {
			items[j+1] = items[j]
			j--
		}
		items[j+1] = it
	}
}

// cmpPlacedItem is the canonical item order: (Pod, CPU, Mem).
func cmpPlacedItem(a, b PlacedItem) int {
	if c := strings.Compare(a.Pod, b.Pod); c != 0 {
		return c
	}
	switch {
	case a.CPU < b.CPU:
		return -1
	case a.CPU > b.CPU:
		return 1
	}
	switch {
	case a.Mem < b.Mem:
		return -1
	case a.Mem > b.Mem:
		return 1
	}
	return 0
}

// cmpPlacedVM is the canonical VM order: (Type, item count,
// lexicographic canonical items). VMs that compare equal are
// content-identical, so their relative order is immaterial.
func cmpPlacedVM(a, b PlacedVM) int {
	if a.Type != b.Type {
		if a.Type < b.Type {
			return -1
		}
		return 1
	}
	if len(a.Items) != len(b.Items) {
		if len(a.Items) < len(b.Items) {
			return -1
		}
		return 1
	}
	for i := range a.Items {
		if c := cmpPlacedItem(a.Items[i], b.Items[i]); c != 0 {
			return c
		}
	}
	return 0
}

// packKey is the cache key: the group's VM and item counts plus a
// commutative 128-bit fold of the per-VM signatures. Commutativity
// makes the key a pure function of the group multiset; exact-input
// verification on lookup covers the residual collision risk.
type packKey struct {
	vms, items int
	a, b       uint64
}

// GroupKey digests a candidate group.
func GroupKey(vms []PlacedVM) packKey {
	k := packKey{vms: len(vms)}
	for _, pv := range vms {
		s := VMSigOf(pv.Type, pv.Items)
		h := mix64(s.A ^ mix64(s.B) ^ uint64(s.Type)<<32 ^ uint64(s.Count))
		k.a += h
		k.b += mix64(h)
		k.items += s.Count
	}
	return k
}

// packEntry is one cached sub-solution on the LRU list.
type packEntry struct {
	key        packKey
	input      []PlacedVM // canonical group, deep-copied (verification)
	output     []PlacedVM // OptimizeHostlo(input) — treated as read-only
	prev, next *packEntry
}

// PackCache is a bounded LRU of Hostlo packing sub-solutions. The zero
// value is not usable; NewPackCache sizes it. A nil *PackCache is a
// valid always-miss cache, so callers can thread an optional cache
// without branching.
type PackCache struct {
	cap        int
	m          map[packKey]*packEntry
	head, tail *packEntry // head = most recently used

	hits, misses, evictions uint64
}

// NewPackCache returns a cache bounded to capacity entries
// (capacity <= 0 returns nil: caching disabled).
func NewPackCache(capacity int) *PackCache {
	if capacity <= 0 {
		return nil
	}
	return &PackCache{cap: capacity, m: make(map[packKey]*packEntry, capacity)}
}

// Get returns the memoized improved placement for a canonical group,
// verifying the stored input matches exactly. The returned slice is
// owned by the cache: callers must treat it as read-only.
func (pc *PackCache) Get(group []PlacedVM) ([]PlacedVM, bool) {
	if pc == nil {
		return nil, false
	}
	e := pc.m[GroupKey(group)]
	if e == nil || !equalPlacement(e.input, group) {
		pc.misses++
		return nil, false
	}
	pc.hits++
	pc.moveToFront(e)
	return e.output, true
}

// Put installs the improved placement for a canonical group, deep-
// copying the group (whose backing arrays the caller reuses) and taking
// ownership of improved. Re-installing an existing key refreshes it.
func (pc *PackCache) Put(group, improved []PlacedVM) {
	if pc == nil {
		return
	}
	key := GroupKey(group)
	if e := pc.m[key]; e != nil {
		e.input = copyPlacement(group)
		e.output = improved
		pc.moveToFront(e)
		return
	}
	if len(pc.m) >= pc.cap {
		lru := pc.tail
		pc.unlink(lru)
		delete(pc.m, lru.key)
		pc.evictions++
	}
	e := &packEntry{key: key, input: copyPlacement(group), output: improved}
	pc.m[key] = e
	pc.pushFront(e)
}

// PackCacheEntry is one exported cache entry. Input and Output are the
// cache-owned slices, immutable once installed (Put replaces the entry's
// slice headers, never the backing arrays), so a snapshot and any number
// of clones can share them copy-on-write.
type PackCacheEntry struct {
	Input  []PlacedVM
	Output []PlacedVM
}

// PackCacheState is the complete state of a PackCache: capacity, the
// entries in recency order (most recently used first), and the lifetime
// counters. It is the snapshot form — RestorePackCache rebuilds an
// identical cache, and because the entry slices are immutable the state
// can share them with a live cache.
type PackCacheState struct {
	Cap       int
	Entries   []PackCacheEntry
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// State captures the cache (nil cache → nil state). The entry slices
// are shared, not copied: they are immutable by the cache's ownership
// contract, so the state stays valid while the live cache keeps
// mutating its map and LRU order.
func (pc *PackCache) State() *PackCacheState {
	if pc == nil {
		return nil
	}
	st := &PackCacheState{
		Cap:       pc.cap,
		Entries:   make([]PackCacheEntry, 0, len(pc.m)),
		Hits:      pc.hits,
		Misses:    pc.misses,
		Evictions: pc.evictions,
	}
	for e := pc.head; e != nil; e = e.next {
		st.Entries = append(st.Entries, PackCacheEntry{Input: e.input, Output: e.output})
	}
	return st
}

// RestorePackCache rebuilds a cache from a captured state, sharing the
// entry slices copy-on-write (the cache never mutates installed slices,
// so N restored branches and the original can all hold the same
// backing arrays). A nil state, or one with a non-positive capacity,
// restores the nil always-miss cache.
func RestorePackCache(st *PackCacheState) (*PackCache, error) {
	if st == nil || st.Cap <= 0 {
		return nil, nil
	}
	if len(st.Entries) > st.Cap {
		return nil, fmt.Errorf("cloudsim: pack cache state holds %d entries, capacity %d", len(st.Entries), st.Cap)
	}
	pc := &PackCache{
		cap:       st.Cap,
		m:         make(map[packKey]*packEntry, st.Cap),
		hits:      st.Hits,
		misses:    st.Misses,
		evictions: st.Evictions,
	}
	// Entries are in recency order; pushing front from the least recent
	// end reproduces the LRU list exactly.
	for i := len(st.Entries) - 1; i >= 0; i-- {
		se := st.Entries[i]
		key := GroupKey(se.Input)
		if _, dup := pc.m[key]; dup {
			return nil, fmt.Errorf("cloudsim: pack cache state has duplicate key (entry %d)", i)
		}
		e := &packEntry{key: key, input: se.Input, output: se.Output}
		pc.m[key] = e
		pc.pushFront(e)
	}
	return pc, nil
}

// Clone returns an independent cache with the same contents: private
// map and LRU list, shared (immutable) entry slices. The clone and the
// original diverge freely from here — the copy-on-write fork path.
func (pc *PackCache) Clone() *PackCache {
	if pc == nil {
		return nil
	}
	clone, err := RestorePackCache(pc.State())
	if err != nil { // unreachable: a live cache cannot hold duplicate keys
		panic(err)
	}
	return clone
}

// Stats reports lifetime hit/miss/eviction counts.
func (pc *PackCache) Stats() (hits, misses, evictions uint64) {
	if pc == nil {
		return 0, 0, 0
	}
	return pc.hits, pc.misses, pc.evictions
}

// Len reports the number of cached sub-solutions.
func (pc *PackCache) Len() int {
	if pc == nil {
		return 0
	}
	return len(pc.m)
}

func (pc *PackCache) pushFront(e *packEntry) {
	e.prev = nil
	e.next = pc.head
	if pc.head != nil {
		pc.head.prev = e
	}
	pc.head = e
	if pc.tail == nil {
		pc.tail = e
	}
}

func (pc *PackCache) unlink(e *packEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		pc.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		pc.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (pc *PackCache) moveToFront(e *packEntry) {
	if pc.head == e {
		return
	}
	pc.unlink(e)
	pc.pushFront(e)
}

// equalPlacement reports exact structural equality of two placements.
func equalPlacement(a, b []PlacedVM) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		av, bv := a[i], b[i]
		if av.Type != bv.Type || len(av.Items) != len(bv.Items) {
			return false
		}
		for j := range av.Items {
			if av.Items[j] != bv.Items[j] {
				return false
			}
		}
	}
	return true
}

// copyPlacement deep-copies a placement (one flat item arena, so a
// cached input is two allocations regardless of VM count).
func copyPlacement(vms []PlacedVM) []PlacedVM {
	total := 0
	for _, pv := range vms {
		total += len(pv.Items)
	}
	arena := make([]PlacedItem, 0, total)
	out := make([]PlacedVM, len(vms))
	for i, pv := range vms {
		start := len(arena)
		arena = append(arena, pv.Items...)
		out[i] = PlacedVM{Type: pv.Type, Items: arena[start:len(arena):len(arena)]}
	}
	return out
}
