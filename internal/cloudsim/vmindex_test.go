package cloudsim

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// randomFleet builds a seeded fleet of n VMs with quantized random
// loads (quantization makes waste ties common, exercising the ordinal
// tie-break).
func randomFleet(r *rand.Rand, n int) *fleet {
	cat := Catalog()
	f := &fleet{catalog: cat}
	pod := 0
	for i := 0; i < n; i++ {
		v := &vm{typ: r.Intn(len(cat))}
		for j := r.Intn(5); j > 0; j-- {
			t := cat[v.typ]
			cpu := float64(1+r.Intn(4)) / 16 * t.RelCPU
			mem := float64(1+r.Intn(4)) / 16 * t.RelMem
			if v.freeCPU(cat) < cpu || v.freeMem(cat) < mem {
				continue
			}
			v.place(item{pod: fmt.Sprintf("p%d", pod), cpu: cpu, mem: mem})
			pod++
		}
		f.vms = append(f.vms, v)
	}
	return f
}

// TestConsolidatePathsAgree forces consolidate through both target
// selection paths — linear scan and vmIndex treap — on identical seeded
// fleets and requires the resulting placements to match exactly. This
// is the contract that lets the threshold be a pure wall-clock knob.
func TestConsolidatePathsAgree(t *testing.T) {
	defer func(old int) { consolidateIndexThreshold = old }(consolidateIndexThreshold)
	for seed := int64(1); seed <= 20; seed++ {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(60)
		base := randomFleet(r, n)

		scan := base.clone()
		consolidateIndexThreshold = 1 << 30 // force the scan path
		scanMoved := scan.consolidate()

		idx := base.clone()
		consolidateIndexThreshold = 0 // force the index path
		idxMoved := idx.consolidate()

		if scanMoved != idxMoved {
			t.Fatalf("seed %d (n=%d): scan moved=%v, index moved=%v", seed, n, scanMoved, idxMoved)
		}
		if !reflect.DeepEqual(scan.vms, idx.vms) {
			t.Fatalf("seed %d (n=%d): fleets diverged after consolidate", seed, n)
		}
	}
}

// TestVMIndexFirstFitMatchesScan cross-checks the treap's query against
// the brute-force scan under random insert/refresh/remove traffic.
func TestVMIndexFirstFitMatchesScan(t *testing.T) {
	cat := Catalog()
	for seed := int64(1); seed <= 5; seed++ {
		r := rand.New(rand.NewSource(seed))
		ix := newVMIndex(cat, 8)
		var vms []*vm
		live := map[int]bool{}
		score := func(v *vm) float64 { return v.waste(cat) }
		for op := 0; op < 3000; op++ {
			switch k := r.Intn(10); {
			case k < 3: // add
				v := &vm{typ: r.Intn(len(cat))}
				t := cat[v.typ]
				v.usedCPU = float64(r.Intn(9)) / 8 * t.RelCPU
				v.usedMem = float64(r.Intn(9)) / 8 * t.RelMem
				vms = append(vms, v)
				ord := len(vms) - 1
				ix.add(v, ord, score(v))
				live[ord] = true
			case k < 5 && len(vms) > 0: // refresh with new load
				ord := r.Intn(len(vms))
				if live[ord] {
					v := vms[ord]
					t := cat[v.typ]
					v.usedCPU = float64(r.Intn(9)) / 8 * t.RelCPU
					v.usedMem = float64(r.Intn(9)) / 8 * t.RelMem
					ix.refresh(v, ord, score(v))
				}
			case k < 6 && len(vms) > 0: // remove
				ord := r.Intn(len(vms))
				ix.remove(ord)
				delete(live, ord)
			default: // query
				cpu := r.Float64() * 0.5
				mem := r.Float64() * 0.5
				var want *vm
				wantOrd := -1
				var wantScore float64
				for ord, v := range vms {
					if !live[ord] || v.freeCPU(cat) < cpu || v.freeMem(cat) < mem {
						continue
					}
					if want == nil || score(v) > wantScore {
						want, wantOrd, wantScore = v, ord, score(v)
					}
				}
				got := ix.root.firstFit(cpu, mem)
				switch {
				case want == nil && got != nil:
					t.Fatalf("seed %d op %d: scan found nothing, index found ord %d", seed, op, got.ord)
				case want != nil && got == nil:
					t.Fatalf("seed %d op %d: scan found ord %d, index found nothing", seed, op, wantOrd)
				case want != nil && got.ord != wantOrd:
					t.Fatalf("seed %d op %d: scan picked ord %d, index ord %d", seed, op, wantOrd, got.ord)
				}
			}
		}
	}
}
