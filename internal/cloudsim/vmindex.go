package cloudsim

// vmIndex: the packing-side analog of the cluster's capacity index
// (internal/cluster/capindex.go). Both optimizer hot loops —
// consolidate's "most-wasted other VM that fits" and FFD's
// "most-requested VM that fits" — are the same query: the best-scoring
// VM with freeCPU >= cpu and freeMem >= mem, ties broken by earliest
// position in the fleet slice. A treap ordered by (score desc, ordinal
// asc) and augmented with subtree maxima of the free capacities answers
// it in O(log n): a subtree whose max free CPU or memory is below the
// request cannot contain a fit and is pruned whole, and the first fit
// found in tree order IS the scan's answer, because tree order equals
// the scan's preference order.
//
// Determinism: priorities are a hash of the ordinal, so tree shape is a
// pure function of the inserted set — no RNG, byte-identical replays.

// mix64 is splitmix64, the same bit mixer capindex.go uses.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// vmNode is one treap entry: a VM with its selection score and free
// capacities frozen at insert time (update = remove + re-insert).
type vmNode struct {
	v                *vm
	score            float64 // waste or requestedFraction, per index
	ord              int     // position in the fleet slice (tie-break)
	prio             uint64
	freeCPU, freeMem float64
	maxCPU, maxMem   float64 // subtree maxima of the free capacities
	l, r             *vmNode
}

// before is the tree order: score desc, ordinal asc — exactly the
// preference order of the linear scans (strict > on score keeps the
// earliest VM among ties).
func (t *vmNode) before(score float64, ord int) bool {
	return t.score > score || (t.score == score && t.ord < ord)
}

func (t *vmNode) update() {
	t.maxCPU, t.maxMem = t.freeCPU, t.freeMem
	if t.l != nil {
		if t.l.maxCPU > t.maxCPU {
			t.maxCPU = t.l.maxCPU
		}
		if t.l.maxMem > t.maxMem {
			t.maxMem = t.l.maxMem
		}
	}
	if t.r != nil {
		if t.r.maxCPU > t.maxCPU {
			t.maxCPU = t.r.maxCPU
		}
		if t.r.maxMem > t.maxMem {
			t.maxMem = t.r.maxMem
		}
	}
}

func vmRotRight(t *vmNode) *vmNode {
	l := t.l
	t.l = l.r
	l.r = t
	t.update()
	l.update()
	return l
}

func vmRotLeft(t *vmNode) *vmNode {
	r := t.r
	t.r = r.l
	r.l = t
	t.update()
	r.update()
	return r
}

func vmInsert(t, n *vmNode) *vmNode {
	if t == nil {
		n.update()
		return n
	}
	if n.before(t.score, t.ord) {
		t.l = vmInsert(t.l, n)
		if t.l.prio < t.prio {
			return vmRotRight(t)
		}
	} else {
		t.r = vmInsert(t.r, n)
		if t.r.prio < t.prio {
			return vmRotLeft(t)
		}
	}
	t.update()
	return t
}

func vmDelete(t *vmNode, score float64, ord int) *vmNode {
	if t == nil {
		return nil
	}
	if t.score == score && t.ord == ord {
		switch {
		case t.l == nil:
			return t.r
		case t.r == nil:
			return t.l
		case t.l.prio < t.r.prio:
			t = vmRotRight(t)
			t.r = vmDelete(t.r, score, ord)
		default:
			t = vmRotLeft(t)
			t.l = vmDelete(t.l, score, ord)
		}
	} else if t.before(score, ord) {
		t.r = vmDelete(t.r, score, ord)
	} else {
		t.l = vmDelete(t.l, score, ord)
	}
	t.update()
	return t
}

// firstFit returns the first VM in tree order (score desc, ordinal asc)
// whose frozen free capacities cover (cpu, mem) — the linear scan's
// pick — or nil. Subtrees whose capacity maxima fall short are pruned.
func (t *vmNode) firstFit(cpu, mem float64) *vmNode {
	if t == nil || t.maxCPU < cpu || t.maxMem < mem {
		return nil
	}
	if n := t.l.firstFit(cpu, mem); n != nil {
		return n
	}
	if t.freeCPU >= cpu && t.freeMem >= mem {
		return t
	}
	return t.r.firstFit(cpu, mem)
}

// vmIndex wraps the treap with the by-ordinal handle table the
// mutation paths need (a VM's node must be findable to remove +
// re-insert it). Node storage is a flat arena indexed by ordinal:
// consolidate builds a fresh index per call over ordinals 0..n-1, so
// sizing the arena up front turns what used to be one heap node plus a
// map insert per VM into two slice allocations per call. Ordinals at
// or past the arena (only the tests' growing workloads produce them)
// fall back to individually allocated nodes; arena pointers stay valid
// because the arena itself never grows.
type vmIndex struct {
	root    *vmNode
	arena   []vmNode
	handles []*vmNode // by ordinal; nil = not indexed
	cat     []VMType
}

// newVMIndex sizes the index for ordinals 0..n-1.
func newVMIndex(cat []VMType, n int) *vmIndex {
	return &vmIndex{arena: make([]vmNode, n), handles: make([]*vmNode, n), cat: cat}
}

// reset prepares a recycled index for a fresh build over ordinals
// 0..n-1, growing the arenas to fit and clearing the handle table —
// consolidate rebuilds its index on every call, and recycling the
// backing storage through the optimizer scratch keeps that off the
// heap profile.
func (ix *vmIndex) reset(cat []VMType, n int) {
	ix.root, ix.cat = nil, cat
	if cap(ix.arena) < n {
		ix.arena = make([]vmNode, n)
		ix.handles = make([]*vmNode, n)
		return
	}
	ix.arena = ix.arena[:n]
	ix.handles = ix.handles[:n]
	for i := range ix.handles {
		ix.handles[i] = nil
	}
}

// buildSorted bulk-loads the index from VMs already sorted in tree
// order — (score desc, ordinal asc), exactly consolidate's visit order
// — using the stack-based Cartesian-tree construction: O(n) total, no
// rotations, against n O(log n) rotating inserts. The stack holds the
// right spine; a node's aggregates are finalized when it leaves the
// spine (its subtree is complete then), and the leftover spine is
// finalized bottom-up at the end. The result is a valid treap — BST
// order by construction, min-heap on prio by the pop invariant — so
// the incremental add/remove/refresh paths operate on it unchanged,
// and queries are shape-independent anyway (first in-order fit).
// spine is caller-owned scratch; the grown slice is returned for
// reuse.
func (ix *vmIndex) buildSorted(f *fleet, order []int, spine []*vmNode) []*vmNode {
	spine = spine[:0]
	for _, ord := range order {
		v := f.vms[ord]
		n := &ix.arena[ord]
		ix.handles[ord] = n
		*n = vmNode{
			v: v, score: v.waste(ix.cat), ord: ord, prio: mix64(uint64(ord) + 1),
			freeCPU: v.freeCPU(ix.cat), freeMem: v.freeMem(ix.cat),
		}
		var last *vmNode
		for len(spine) > 0 && spine[len(spine)-1].prio > n.prio {
			last = spine[len(spine)-1]
			spine = spine[:len(spine)-1]
			last.update()
		}
		n.l = last
		if len(spine) > 0 {
			spine[len(spine)-1].r = n
		}
		spine = append(spine, n)
	}
	for i := len(spine) - 1; i >= 0; i-- {
		spine[i].update()
	}
	if len(spine) > 0 {
		ix.root = spine[0]
	}
	return spine
}

// add indexes v under the given score, freezing its current free
// capacities.
func (ix *vmIndex) add(v *vm, ord int, score float64) {
	for ord >= len(ix.handles) {
		ix.handles = append(ix.handles, nil)
	}
	n := ix.handles[ord]
	if n == nil {
		if ord < len(ix.arena) {
			n = &ix.arena[ord]
		} else {
			n = &vmNode{}
		}
		ix.handles[ord] = n
	}
	*n = vmNode{
		v: v, score: score, ord: ord, prio: mix64(uint64(ord) + 1),
		freeCPU: v.freeCPU(ix.cat), freeMem: v.freeMem(ix.cat),
	}
	ix.root = vmInsert(ix.root, n)
}

// remove drops the VM with this ordinal, if indexed.
func (ix *vmIndex) remove(ord int) {
	if ord >= len(ix.handles) || ix.handles[ord] == nil {
		return
	}
	n := ix.handles[ord]
	if n.v == nil {
		return
	}
	ix.root = vmDelete(ix.root, n.score, n.ord)
	n.l, n.r = nil, nil
	n.v = nil
}

// refresh re-indexes the VM with this ordinal under a new score after
// its contents changed, reusing its treap node (no allocation — this
// runs once per tentative container move in consolidate).
func (ix *vmIndex) refresh(v *vm, ord int, score float64) {
	if ord >= len(ix.handles) || ix.handles[ord] == nil || ix.handles[ord].v == nil {
		ix.add(v, ord, score)
		return
	}
	n := ix.handles[ord]
	ix.root = vmDelete(ix.root, n.score, n.ord)
	n.l, n.r = nil, nil
	n.score = score
	n.freeCPU, n.freeMem = v.freeCPU(ix.cat), v.freeMem(ix.cat)
	ix.root = vmInsert(ix.root, n)
}
