package cloudsim

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"nestless/internal/trace"
)

// item is one placed container.
type item struct {
	pod      string
	cpu, mem float64
}

// vm is one bought instance with its contents.
type vm struct {
	typ     int
	usedCPU float64
	usedMem float64
	items   []item
	// splitPass memo: when splitClean, a trial re-pack of exactly these
	// items found nothing cheaper than catalog type splitCleanTyp.
	// packContainersFFD is deterministic in the items, so the verdict
	// stays valid until the contents change (place/remove clear it).
	splitClean    bool
	splitCleanTyp int
}

func (v *vm) freeCPU(c []VMType) float64 { return c[v.typ].RelCPU - v.usedCPU }
func (v *vm) freeMem(c []VMType) float64 { return c[v.typ].RelMem - v.usedMem }

// requestedFraction is the "most requested" score (§5.3.1): mean of the
// requested CPU and memory fractions.
func (v *vm) requestedFraction(c []VMType) float64 {
	t := c[v.typ]
	return (v.usedCPU/t.RelCPU + v.usedMem/t.RelMem) / 2
}

// waste is free capacity (the inverse), used by the Hostlo pass.
func (v *vm) waste(c []VMType) float64 {
	return v.freeCPU(c) + v.freeMem(c)
}

func (v *vm) place(it item) {
	v.items = append(v.items, it)
	v.usedCPU += it.cpu
	v.usedMem += it.mem
	v.splitClean = false
}

func (v *vm) remove(i int) item {
	it := v.items[i]
	v.items = append(v.items[:i], v.items[i+1:]...)
	v.usedCPU -= it.cpu
	v.usedMem -= it.mem
	v.splitClean = false
	return it
}

// fleet is a user's set of bought VMs.
type fleet struct {
	catalog []VMType
	vms     []*vm
	// scratch holds the optimizer's reusable per-call buffers. A fleet
	// and all its clones share one instance: passes within an
	// improveHostlo call run strictly sequentially, and every
	// OptimizeHostlo call owns a private fleet chain, so sharing stays
	// safe even when calls run on parallel goroutines.
	scratch *optScratch
}

// optScratch is the shared buffer set (see fleet.scratch). The zero
// value is ready to use; buffers grow to the high-water mark of the
// call and stay there.
type optScratch struct {
	order []int      // consolidate: candidate visit order
	items []item     // consolidate: sorted copy of the source VM's items
	plan  []consMove // consolidate: tentative moves, kept for revert
	ffd   []item     // packContainersFFD: sorted copy of the input

	// packContainersFFD's sub-fleet arenas. The returned fleet aliases
	// them, so it is only valid until the next call with the same
	// scratch — splitPass copies the sub-VMs out on the (rare) accept.
	subVMs    []vm   // VM arena
	subPtrs   []*vm  // the returned fleet's vms slice
	subAssign []int  // item k → VM index
	subCounts []int  // items per VM
	subItems  []item // final per-VM item storage, one flat arena
	subFleet  fleet  // the returned fleet header itself

	vmix  vmIndex   // consolidate: recycled target index storage
	spine []*vmNode // consolidate: Cartesian-build stack

	// improveHostlo's clone double-buffer: at most two optimizer fleets
	// are alive at once (cur and the clone being evaluated), so clones
	// alternate between two recycled buffers instead of allocating.
	cbuf  [2]cloneBuf
	cbufN int // clones handed out; parity picks the buffer
}

// cloneBuf backs one recycled optimizer fleet (see optScratch.cbuf).
type cloneBuf struct {
	f      fleet
	vms    []*vm
	varena []vm
	iarena []item
}

// scratchPool recycles optimizer scratch across OptimizeHostlo calls.
// Each call checks one out for its private fleet chain, so concurrent
// calls (the cluster's parallel repack fan-out) never share state.
var scratchPool = sync.Pool{New: func() any { return &optScratch{} }}

// sc returns the fleet's scratch, creating it on first use (fleets
// built outside the optimizer entry points start without one).
func (f *fleet) sc() *optScratch {
	if f.scratch == nil {
		f.scratch = &optScratch{}
	}
	return f.scratch
}

// consMove records one tentative consolidate relocation.
type consMove struct {
	target *vm
	ord    int
	it     item
}

// cost prices the fleet per hour.
func (f *fleet) cost() float64 {
	var c float64
	for _, v := range f.vms {
		c += f.catalog[v.typ].PricePerH
	}
	return c
}

// clone deep-copies the fleet (for revertable optimisation passes).
// The copy is built in two arena allocations — one for the vm structs,
// one flat item store sliced full-capacity per VM so a later place()
// grows a private copy instead of clobbering a neighbor — because the
// lifecycle optimizer clones small fleets millions of times and the
// old per-VM allocations dominated its heap profile.
func (f *fleet) clone() *fleet {
	nf := &fleet{catalog: f.catalog, vms: make([]*vm, len(f.vms)), scratch: f.scratch}
	total := 0
	for _, v := range f.vms {
		total += len(v.items)
	}
	varena := make([]vm, len(f.vms))
	iarena := make([]item, 0, total)
	for i, v := range f.vms {
		cp := &varena[i]
		*cp = *v
		is := len(iarena)
		iarena = append(iarena, v.items...)
		cp.items = iarena[is:len(iarena):len(iarena)]
		nf.vms[i] = cp
	}
	return nf
}

// cloneBuffered is clone into one of the scratch's two recycled
// buffers (improveHostlo keeps at most two optimizer fleets alive, and
// the caller of the last clone copies the result out via fromFleet
// before the scratch is recycled). Semantics match clone exactly: the
// vm structs and one flat item store are rebuilt per call, and each
// VM's items are capped sub-slices so a later place() grows a private
// copy instead of clobbering a neighbor.
func (f *fleet) cloneBuffered() *fleet {
	sc := f.sc()
	b := &sc.cbuf[sc.cbufN&1]
	sc.cbufN++
	total := 0
	for _, v := range f.vms {
		total += len(v.items)
	}
	if cap(b.vms) < len(f.vms) {
		b.vms = make([]*vm, len(f.vms))
		b.varena = make([]vm, len(f.vms))
	} else {
		b.vms = b.vms[:len(f.vms)]
		b.varena = b.varena[:len(f.vms)]
	}
	// Each VM's region carries cloneSlack spare capacity so the first
	// few place() calls consolidate aims at it extend in place instead
	// of reallocating (placements past the slack fall back to a private
	// append copy, same as before).
	const cloneSlack = 32
	need := total + cloneSlack*len(f.vms)
	if cap(b.iarena) < need {
		b.iarena = make([]item, need)
	} else {
		b.iarena = b.iarena[:need]
	}
	pos := 0
	for i, v := range f.vms {
		cp := &b.varena[i]
		*cp = *v
		n := copy(b.iarena[pos:], v.items)
		cp.items = b.iarena[pos : pos+n : pos+n+cloneSlack]
		b.vms[i] = cp
		pos += n + cloneSlack
	}
	b.f = fleet{catalog: f.catalog, vms: b.vms, scratch: sc}
	return &b.f
}

// shrink retypes every VM to the cheapest model that still holds its
// contents and drops empty VMs.
func (f *fleet) shrink() {
	out := f.vms[:0]
	for _, v := range f.vms {
		if len(v.items) == 0 {
			continue
		}
		if t := cheapestFitting(f.catalog, v.usedCPU, v.usedMem); t >= 0 {
			v.typ = t
		}
		out = append(out, v)
	}
	f.vms = out
}

// ErrPodTooBig reports a pod that exceeds the largest machine under
// whole-pod placement.
type ErrPodTooBig struct{ Pod string }

func (e ErrPodTooBig) Error() string {
	return fmt.Sprintf("cloudsim: pod %s exceeds the largest VM", e.Pod)
}

// Policy selects the scheduler scoring for whole-pod placement.
type Policy int

// Scheduler policies: the paper simulates Kubernetes' "most requested"
// grouping strategy; "least requested" (spreading) is the ablation.
const (
	MostRequested Policy = iota
	LeastRequested
)

// packKubernetes runs the paper's baseline (steps 1–3): pods biggest
// first; whole pod onto the most-requested VM that fits, otherwise buy
// the cheapest type that fits the whole pod.
func packKubernetes(user trace.User, catalog []VMType) (*fleet, error) {
	return packKubernetesPolicy(user, catalog, MostRequested)
}

func packKubernetesPolicy(user trace.User, catalog []VMType, pol Policy) (*fleet, error) {
	pods := append([]trace.Pod(nil), user.Pods...)
	sort.SliceStable(pods, func(i, j int) bool {
		return pods[i].TotalCPU()+pods[i].TotalMem() > pods[j].TotalCPU()+pods[j].TotalMem()
	})
	f := &fleet{catalog: catalog}
	for _, p := range pods {
		cpu, mem := p.TotalCPU(), p.TotalMem()
		var best *vm
		for _, v := range f.vms {
			if v.freeCPU(catalog) >= cpu && v.freeMem(catalog) >= mem {
				better := best == nil ||
					(pol == MostRequested && v.requestedFraction(catalog) > best.requestedFraction(catalog)) ||
					(pol == LeastRequested && v.requestedFraction(catalog) < best.requestedFraction(catalog))
				if better {
					best = v
				}
			}
		}
		if best == nil {
			t := cheapestFitting(catalog, cpu, mem)
			if t < 0 {
				return nil, ErrPodTooBig{Pod: p.ID}
			}
			best = &vm{typ: t}
			f.vms = append(f.vms, best)
		}
		for _, c := range p.Containers {
			best.place(item{pod: p.ID, cpu: c.CPU, mem: c.Mem})
		}
	}
	return f, nil
}

// improveHostlo runs the paper's step 4 on a Kubernetes packing: move
// containers — smallest first — onto the VMs with the most wasted
// resources, then shrink/drop VMs. Passes repeat while they reduce cost;
// a pass that does not help is reverted, so the result never costs more
// than the baseline.
func improveHostlo(base *fleet) *fleet {
	cur := base.cloneBuffered()
	cur.shrink()
	if cur.cost() > base.cost() {
		cur = base.cloneBuffered()
	}
	for pass := 0; pass < 10; pass++ {
		next := cur.cloneBuffered()
		moved := next.consolidate()
		split := next.splitPass()
		next.shrink()
		if (!moved && !split) || next.cost() >= cur.cost() {
			break
		}
		cur = next
	}
	// A final split attempt catches single-VM fleets (nothing to
	// consolidate, but the pod may still be cheaper in pieces — the
	// paper's §2 motivating example). Skipped when every VM is already
	// trivially unsplittable or memoized clean: splitPass would report
	// false without mutating anything, so the clone is pure waste.
	needFinal := false
	for _, v := range cur.vms {
		if len(v.items) >= 2 && !(v.splitClean && v.splitCleanTyp == v.typ) {
			needFinal = true
			break
		}
	}
	if needFinal {
		final := cur.cloneBuffered()
		if final.splitPass() {
			final.shrink()
			if final.cost() < cur.cost() {
				cur = final
			}
		}
	}
	return cur
}

// splitPass replaces VMs whose contents re-pack into a strictly cheaper
// combination of (typically smaller) models — the "shrinking the sizes
// of VMs" half of the paper's step 4, which only container-level
// placement makes possible. Reports whether any VM was replaced.
//
// Two prunes keep the trials affordable on big fleets without changing
// a single verdict:
//
//   - A cost lower bound. Any fleet hosting (usedCPU, usedMem) buys at
//     least that much relative capacity, in quanta of the smallest
//     catalog size (when every size is a multiple of it), at no less
//     than the catalog's cheapest $/capacity rate. A VM at or under the
//     bound cannot re-pack strictly cheaper, so the trial is skipped.
//   - A memo. packContainersFFD is deterministic in the item multiset,
//     so a VM whose trial found no improvement stays clean — and is
//     skipped — until its contents change.
func (f *fleet) splitPass() bool {
	rates := floorRates(f.catalog)
	changed := false
	for i := 0; i < len(f.vms); i++ {
		v := f.vms[i]
		if len(v.items) < 2 {
			continue
		}
		if v.splitClean && v.splitCleanTyp == v.typ {
			continue
		}
		// The slack factor absorbs the few ulps by which the float bound
		// could exceed the true infimum; pruning must never be optimistic.
		if rates.repackBound(v.usedCPU, v.usedMem)*(1-1e-9) >= f.catalog[v.typ].PricePerH {
			continue
		}
		sub := packContainersFFD(v.items, f.catalog, f.sc())
		if sub == nil || sub.cost() >= f.catalog[v.typ].PricePerH {
			v.splitClean, v.splitCleanTyp = true, v.typ
			continue
		}
		// Replace v by the sub-fleet, copying the VMs out of the
		// scratch arenas the next packContainersFFD call will recycle.
		f.vms = append(f.vms[:i], f.vms[i+1:]...)
		for _, sv := range sub.vms {
			nv := &vm{typ: sv.typ, usedCPU: sv.usedCPU, usedMem: sv.usedMem,
				items: append([]item(nil), sv.items...)}
			f.vms = append(f.vms, nv)
		}
		i--
		changed = true
	}
	return changed
}

// sortItemsBySize stably sorts items by cpu+mem, ascending or
// descending. Binary insertion sort — stable, allocation-free, and an
// order of magnitude cheaper than sort.SliceStable's reflection-based
// swapper on the short per-VM slices the optimizer sorts millions of
// times. Insertion order equals stable-sort order, so the switch is
// invisible to placement results.
func sortItemsBySize(items []item, desc bool) {
	if desc {
		for i := 1; i < len(items); i++ {
			it := items[i]
			k := it.cpu + it.mem
			j := i
			for j > 0 && items[j-1].cpu+items[j-1].mem < k {
				items[j] = items[j-1]
				j--
			}
			items[j] = it
		}
		return
	}
	for i := 1; i < len(items); i++ {
		it := items[i]
		k := it.cpu + it.mem
		j := i
		for j > 0 && items[j-1].cpu+items[j-1].mem > k {
			items[j] = items[j-1]
			j--
		}
		items[j] = it
	}
}

// catalogRates carries splitPass's lower-bound ingredients: the
// catalog's cheapest price per unit of relative CPU / memory, and the
// capacity quantum per dimension — the smallest relative size, when
// every size is an integer multiple of it (0 otherwise, disabling the
// quantization and leaving the plain continuous bound).
type catalogRates struct {
	perCPU, perMem float64
	qCPU, qMem     float64
}

func floorRates(catalog []VMType) catalogRates {
	var r catalogRates
	r.qCPU, r.qMem = catalog[0].RelCPU, catalog[0].RelMem
	for i, t := range catalog {
		c, m := t.PricePerH/t.RelCPU, t.PricePerH/t.RelMem
		if i == 0 || c < r.perCPU {
			r.perCPU = c
		}
		if i == 0 || m < r.perMem {
			r.perMem = m
		}
		if t.RelCPU < r.qCPU {
			r.qCPU = t.RelCPU
		}
		if t.RelMem < r.qMem {
			r.qMem = t.RelMem
		}
	}
	for _, t := range catalog {
		if k := t.RelCPU / r.qCPU; math.Abs(k-math.Round(k)) > 1e-9 {
			r.qCPU = 0
		}
		if k := t.RelMem / r.qMem; math.Abs(k-math.Round(k)) > 1e-9 {
			r.qMem = 0
		}
	}
	return r
}

// repackBound is a sound lower bound on the hourly cost of any catalog
// fleet hosting (usedCPU, usedMem): bought capacity covers the demand,
// comes in whole-size quanta, and costs at least the floor rate.
func (r catalogRates) repackBound(usedCPU, usedMem float64) float64 {
	cpu, mem := usedCPU, usedMem
	if r.qCPU > 0 {
		cpu = math.Ceil(cpu/r.qCPU*(1-1e-12)) * r.qCPU
	}
	if r.qMem > 0 {
		mem = math.Ceil(mem/r.qMem*(1-1e-12)) * r.qMem
	}
	b := cpu * r.perCPU
	if m := mem * r.perMem; m > b {
		b = m
	}
	return b
}

// packContainersFFD packs items container-by-container: biggest first,
// most-requested existing VM that fits, else buy the cheapest fitting
// type. Returns nil if some item fits no machine. The sort copy lives
// in sc (the items themselves are copied by value into the new VMs, so
// reusing the buffer across calls is safe); pass nil for a one-shot
// call outside the optimizer loop.
func packContainersFFD(items []item, catalog []VMType, sc *optScratch) *fleet {
	if sc == nil {
		sc = &optScratch{}
	}
	sorted := append(sc.ffd[:0], items...)
	sc.ffd = sorted
	sortItemsBySize(sorted, true)
	// Two-pass arena build. FFD's per-item choice reads only the used
	// sums, never the item slices, so pass 1 assigns every item to a VM
	// index while accumulating the sums in exactly the order the old
	// per-item place() calls did (identical floats), and pass 2 lays the
	// item slices out contiguously in one arena. The hot path — this
	// runs once per split probe, and most probes are discarded —
	// allocates nothing once the scratch arenas have warmed up.
	vms := sc.subVMs[:0]
	assign := sc.subAssign[:0]
	for _, it := range sorted {
		best := -1
		for j := range vms {
			v := &vms[j]
			if v.freeCPU(catalog) >= it.cpu && v.freeMem(catalog) >= it.mem {
				if best < 0 || v.requestedFraction(catalog) > vms[best].requestedFraction(catalog) {
					best = j
				}
			}
		}
		if best < 0 {
			t := cheapestFitting(catalog, it.cpu, it.mem)
			if t < 0 {
				sc.subVMs, sc.subAssign = vms, assign
				return nil
			}
			vms = append(vms, vm{typ: t})
			best = len(vms) - 1
		}
		vms[best].usedCPU += it.cpu
		vms[best].usedMem += it.mem
		assign = append(assign, best)
	}
	counts := sc.subCounts[:0]
	for range vms {
		counts = append(counts, 0)
	}
	for _, j := range assign {
		counts[j]++
	}
	arena := sc.subItems[:0]
	if cap(arena) < len(sorted) {
		arena = make([]item, 0, len(sorted))
	}
	arena = arena[:len(sorted)]
	offs := counts // reuse: counts[j] becomes the next write offset for VM j
	next := 0
	for j := range vms {
		c := offs[j]
		offs[j] = next
		vms[j].items = arena[next : next : next+c]
		next += c
	}
	for k, j := range assign {
		vms[j].items = append(vms[j].items, sorted[k])
	}
	ptrs := sc.subPtrs[:0]
	for j := range vms {
		ptrs = append(ptrs, &vms[j])
	}
	sc.subVMs, sc.subAssign, sc.subCounts, sc.subItems, sc.subPtrs =
		vms, assign, counts, arena, ptrs
	sc.subFleet = fleet{catalog: catalog, vms: ptrs}
	f := &sc.subFleet
	// Shrink the sub-fleet so "cheapest fitting at purchase" does not
	// leave oversized types behind.
	f.shrink()
	return f
}

// consolidateIndexThreshold is the fleet size above which consolidate
// switches from the linear target scan to the vmIndex treap. Below it
// the scan's cache behavior wins; above it the O(log n) query does. The
// two paths pick byte-identical targets (TestConsolidatePathsAgree
// forces each in turn). A var only so that test can pin it.
var consolidateIndexThreshold = 24

// consolidate tries to eliminate or lighten VMs: candidates are visited
// most-wasted first, and each of their containers — smallest first — is
// relocated into the most-wasted *other* VM that fits (the paper's
// "moving containers to the VMs that have the most wasted resources,
// smallest containers first"). A candidate whose containers cannot all
// be rehomed is left untouched. Reports whether anything moved.
func (f *fleet) consolidate() bool {
	sc := f.sc()
	order := sc.order[:0]
	for i := range f.vms {
		order = append(order, i)
	}
	sc.order = order
	sort.SliceStable(order, func(a, b int) bool {
		return f.vms[order[a]].waste(f.catalog) > f.vms[order[b]].waste(f.catalog)
	})

	// Above the threshold, index every VM by (waste desc, position asc)
	// so each target query is a pruned tree descent instead of a fleet
	// scan. The index is refreshed on every mutation, so its frozen free
	// capacities always equal the scan's live ones.
	var ix *vmIndex
	if len(f.vms) >= consolidateIndexThreshold {
		ix = &sc.vmix
		ix.reset(f.catalog, len(f.vms))
		sc.spine = ix.buildSorted(f, order, sc.spine)
	}

	moved := false
	for _, vi := range order {
		src := f.vms[vi]
		if len(src.items) == 0 {
			continue
		}
		if ix != nil {
			// Exclude src as a target for its own containers.
			ix.remove(vi)
		}
		// Fail fast: if the largest container fits no target before any
		// tentative move, the attempt cannot succeed — target capacity
		// only shrinks as the smaller containers are placed — so the
		// place-then-revert dance would end exactly here anyway. The
		// largest-by-size item is found by scan so the copy + sort below
		// is only paid for attempts that can get past this check.
		largest := src.items[0]
		for _, it := range src.items[1:] {
			if it.cpu+it.mem > largest.cpu+largest.mem {
				largest = it
			}
		}
		fits := false
		if ix != nil {
			fits = ix.root.firstFit(largest.cpu, largest.mem) != nil
		} else {
			for _, t := range f.vms {
				if t != src && t.freeCPU(f.catalog) >= largest.cpu && t.freeMem(f.catalog) >= largest.mem {
					fits = true
					break
				}
			}
		}
		if !fits {
			if ix != nil {
				ix.add(src, vi, src.waste(f.catalog))
			}
			continue
		}
		// Tentatively rehome every container, smallest first.
		items := append(sc.items[:0], src.items...)
		sc.items = items
		sortItemsBySize(items, false)
		plan := sc.plan[:0]
		ok := true
		for _, it := range items {
			var best *vm
			ord := -1
			if ix != nil {
				if n := ix.root.firstFit(it.cpu, it.mem); n != nil {
					best, ord = n.v, n.ord
				}
			} else {
				for ti, t := range f.vms {
					if t == src {
						continue
					}
					if t.freeCPU(f.catalog) >= it.cpu && t.freeMem(f.catalog) >= it.mem {
						if best == nil || t.waste(f.catalog) > best.waste(f.catalog) {
							best, ord = t, ti
						}
					}
				}
			}
			if best == nil {
				ok = false
				break
			}
			best.place(it)
			if ix != nil {
				ix.refresh(best, ord, best.waste(f.catalog))
			}
			plan = append(plan, consMove{target: best, ord: ord, it: it})
		}
		sc.plan = plan[:0]
		if !ok {
			// Revert tentative placements.
			for _, p := range plan {
				for i := range p.target.items {
					if p.target.items[i] == p.it {
						p.target.remove(i)
						break
					}
				}
				if ix != nil {
					ix.refresh(p.target, p.ord, p.target.waste(f.catalog))
				}
			}
			if ix != nil {
				// src is unchanged; restore it as a target.
				ix.add(src, vi, src.waste(f.catalog))
			}
			continue
		}
		// Truncate rather than nil: the emptied VM is now the most-wasted
		// machine in the fleet, i.e. the prime target for every later
		// candidate's containers, and keeping its slice capacity lets
		// those moves append in place instead of reallocating.
		src.items = src.items[:0]
		src.usedCPU, src.usedMem = 0, 0
		if ix != nil {
			// Emptied: back in the index at full waste — later candidates
			// may consolidate into it, exactly as the scan would.
			ix.add(src, vi, src.waste(f.catalog))
		}
		moved = true
	}
	return moved
}
