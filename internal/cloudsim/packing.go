package cloudsim

import (
	"fmt"
	"sort"

	"nestless/internal/trace"
)

// item is one placed container.
type item struct {
	pod      string
	cpu, mem float64
}

// vm is one bought instance with its contents.
type vm struct {
	typ     int
	usedCPU float64
	usedMem float64
	items   []item
}

func (v *vm) freeCPU(c []VMType) float64 { return c[v.typ].RelCPU - v.usedCPU }
func (v *vm) freeMem(c []VMType) float64 { return c[v.typ].RelMem - v.usedMem }

// requestedFraction is the "most requested" score (§5.3.1): mean of the
// requested CPU and memory fractions.
func (v *vm) requestedFraction(c []VMType) float64 {
	t := c[v.typ]
	return (v.usedCPU/t.RelCPU + v.usedMem/t.RelMem) / 2
}

// waste is free capacity (the inverse), used by the Hostlo pass.
func (v *vm) waste(c []VMType) float64 {
	return v.freeCPU(c) + v.freeMem(c)
}

func (v *vm) place(it item) {
	v.items = append(v.items, it)
	v.usedCPU += it.cpu
	v.usedMem += it.mem
}

func (v *vm) remove(i int) item {
	it := v.items[i]
	v.items = append(v.items[:i], v.items[i+1:]...)
	v.usedCPU -= it.cpu
	v.usedMem -= it.mem
	return it
}

// fleet is a user's set of bought VMs.
type fleet struct {
	catalog []VMType
	vms     []*vm
}

// cost prices the fleet per hour.
func (f *fleet) cost() float64 {
	var c float64
	for _, v := range f.vms {
		c += f.catalog[v.typ].PricePerH
	}
	return c
}

// clone deep-copies the fleet (for revertable optimisation passes).
func (f *fleet) clone() *fleet {
	nf := &fleet{catalog: f.catalog, vms: make([]*vm, len(f.vms))}
	for i, v := range f.vms {
		cp := *v
		cp.items = append([]item(nil), v.items...)
		nf.vms[i] = &cp
	}
	return nf
}

// shrink retypes every VM to the cheapest model that still holds its
// contents and drops empty VMs.
func (f *fleet) shrink() {
	out := f.vms[:0]
	for _, v := range f.vms {
		if len(v.items) == 0 {
			continue
		}
		if t := cheapestFitting(f.catalog, v.usedCPU, v.usedMem); t >= 0 {
			v.typ = t
		}
		out = append(out, v)
	}
	f.vms = out
}

// ErrPodTooBig reports a pod that exceeds the largest machine under
// whole-pod placement.
type ErrPodTooBig struct{ Pod string }

func (e ErrPodTooBig) Error() string {
	return fmt.Sprintf("cloudsim: pod %s exceeds the largest VM", e.Pod)
}

// Policy selects the scheduler scoring for whole-pod placement.
type Policy int

// Scheduler policies: the paper simulates Kubernetes' "most requested"
// grouping strategy; "least requested" (spreading) is the ablation.
const (
	MostRequested Policy = iota
	LeastRequested
)

// packKubernetes runs the paper's baseline (steps 1–3): pods biggest
// first; whole pod onto the most-requested VM that fits, otherwise buy
// the cheapest type that fits the whole pod.
func packKubernetes(user trace.User, catalog []VMType) (*fleet, error) {
	return packKubernetesPolicy(user, catalog, MostRequested)
}

func packKubernetesPolicy(user trace.User, catalog []VMType, pol Policy) (*fleet, error) {
	pods := append([]trace.Pod(nil), user.Pods...)
	sort.SliceStable(pods, func(i, j int) bool {
		return pods[i].TotalCPU()+pods[i].TotalMem() > pods[j].TotalCPU()+pods[j].TotalMem()
	})
	f := &fleet{catalog: catalog}
	for _, p := range pods {
		cpu, mem := p.TotalCPU(), p.TotalMem()
		var best *vm
		for _, v := range f.vms {
			if v.freeCPU(catalog) >= cpu && v.freeMem(catalog) >= mem {
				better := best == nil ||
					(pol == MostRequested && v.requestedFraction(catalog) > best.requestedFraction(catalog)) ||
					(pol == LeastRequested && v.requestedFraction(catalog) < best.requestedFraction(catalog))
				if better {
					best = v
				}
			}
		}
		if best == nil {
			t := cheapestFitting(catalog, cpu, mem)
			if t < 0 {
				return nil, ErrPodTooBig{Pod: p.ID}
			}
			best = &vm{typ: t}
			f.vms = append(f.vms, best)
		}
		for _, c := range p.Containers {
			best.place(item{pod: p.ID, cpu: c.CPU, mem: c.Mem})
		}
	}
	return f, nil
}

// improveHostlo runs the paper's step 4 on a Kubernetes packing: move
// containers — smallest first — onto the VMs with the most wasted
// resources, then shrink/drop VMs. Passes repeat while they reduce cost;
// a pass that does not help is reverted, so the result never costs more
// than the baseline.
func improveHostlo(base *fleet) *fleet {
	cur := base.clone()
	cur.shrink()
	if cur.cost() > base.cost() {
		cur = base.clone()
	}
	for pass := 0; pass < 10; pass++ {
		next := cur.clone()
		moved := next.consolidate()
		split := next.splitPass()
		next.shrink()
		if (!moved && !split) || next.cost() >= cur.cost() {
			break
		}
		cur = next
	}
	// A final split attempt catches single-VM fleets (nothing to
	// consolidate, but the pod may still be cheaper in pieces — the
	// paper's §2 motivating example).
	final := cur.clone()
	if final.splitPass() {
		final.shrink()
		if final.cost() < cur.cost() {
			cur = final
		}
	}
	return cur
}

// splitPass replaces VMs whose contents re-pack into a strictly cheaper
// combination of (typically smaller) models — the "shrinking the sizes
// of VMs" half of the paper's step 4, which only container-level
// placement makes possible. Reports whether any VM was replaced.
func (f *fleet) splitPass() bool {
	changed := false
	for i := 0; i < len(f.vms); i++ {
		v := f.vms[i]
		if len(v.items) < 2 {
			continue
		}
		sub := packContainersFFD(v.items, f.catalog)
		if sub == nil || sub.cost() >= f.catalog[v.typ].PricePerH {
			continue
		}
		// Replace v by the sub-fleet.
		f.vms = append(f.vms[:i], f.vms[i+1:]...)
		f.vms = append(f.vms, sub.vms...)
		i--
		changed = true
	}
	return changed
}

// packContainersFFD packs items container-by-container: biggest first,
// most-requested existing VM that fits, else buy the cheapest fitting
// type. Returns nil if some item fits no machine.
func packContainersFFD(items []item, catalog []VMType) *fleet {
	sorted := append([]item(nil), items...)
	sort.SliceStable(sorted, func(a, b int) bool {
		return sorted[a].cpu+sorted[a].mem > sorted[b].cpu+sorted[b].mem
	})
	f := &fleet{catalog: catalog}
	for _, it := range sorted {
		var best *vm
		for _, v := range f.vms {
			if v.freeCPU(catalog) >= it.cpu && v.freeMem(catalog) >= it.mem {
				if best == nil || v.requestedFraction(catalog) > best.requestedFraction(catalog) {
					best = v
				}
			}
		}
		if best == nil {
			t := cheapestFitting(catalog, it.cpu, it.mem)
			if t < 0 {
				return nil
			}
			best = &vm{typ: t}
			f.vms = append(f.vms, best)
		}
		best.place(it)
	}
	// Shrink the sub-fleet so "cheapest fitting at purchase" does not
	// leave oversized types behind.
	f.shrink()
	return f
}

// consolidate tries to eliminate or lighten VMs: candidates are visited
// most-wasted first, and each of their containers — smallest first — is
// relocated into the most-wasted *other* VM that fits (the paper's
// "moving containers to the VMs that have the most wasted resources,
// smallest containers first"). A candidate whose containers cannot all
// be rehomed is left untouched. Reports whether anything moved.
func (f *fleet) consolidate() bool {
	order := make([]int, len(f.vms))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return f.vms[order[a]].waste(f.catalog) > f.vms[order[b]].waste(f.catalog)
	})

	moved := false
	for _, vi := range order {
		src := f.vms[vi]
		if len(src.items) == 0 {
			continue
		}
		// Tentatively rehome every container, smallest first.
		items := append([]item(nil), src.items...)
		sort.SliceStable(items, func(a, b int) bool {
			return items[a].cpu+items[a].mem < items[b].cpu+items[b].mem
		})
		type placement struct {
			target *vm
			it     item
		}
		var plan []placement
		ok := true
		for _, it := range items {
			var best *vm
			for _, t := range f.vms {
				if t == src {
					continue
				}
				if t.freeCPU(f.catalog) >= it.cpu && t.freeMem(f.catalog) >= it.mem {
					if best == nil || t.waste(f.catalog) > best.waste(f.catalog) {
						best = t
					}
				}
			}
			if best == nil {
				ok = false
				break
			}
			best.place(it)
			plan = append(plan, placement{target: best, it: it})
		}
		if !ok {
			// Revert tentative placements.
			for _, p := range plan {
				for i := range p.target.items {
					if p.target.items[i] == p.it {
						p.target.remove(i)
						break
					}
				}
			}
			continue
		}
		src.items = nil
		src.usedCPU, src.usedMem = 0, 0
		moved = true
	}
	return moved
}
