package cloudsim

import (
	"math"
	"strconv"
)

// This file is the exported face of the packing machinery, consumed by
// internal/cluster: the lifecycle simulator keeps live per-node state,
// but its placement decisions must be *the same code* as the static
// Fig. 9 pricing — that is what makes a no-churn cluster run converge
// to the static packing exactly, not merely approximately.

// PlacedItem is one placed container, labeled with its owning pod.
type PlacedItem struct {
	Pod      string
	CPU, Mem float64
}

// PlacedVM is one VM (an index into the catalog) with its contents.
type PlacedVM struct {
	Type  int
	Items []PlacedItem
}

// CheapestFitting returns the index of the cheapest catalog type able
// to host (cpu, mem), or -1 when the request exceeds every machine.
func CheapestFitting(catalog []VMType, cpu, mem float64) int {
	return cheapestFitting(catalog, cpu, mem)
}

// MostRequestedFraction is the §5.3.1 "most requested" score of a VM
// with the given load: the mean of its used CPU and memory fractions.
func MostRequestedFraction(t VMType, usedCPU, usedMem float64) float64 {
	return (usedCPU/t.RelCPU + usedMem/t.RelMem) / 2
}

// toFleet converts an exported placement into the internal fleet form,
// preserving VM order and item order — the optimizer's passes use
// stable sorts, so order is part of its determinism contract.
// Like fleet.clone, the conversion builds into two arenas (vm structs,
// one flat full-capacity-sliced item store): the lifecycle optimizer
// runs this per candidate group, millions of times at trace scale. The
// used sums accumulate in item order, exactly as the old per-item
// place() calls did, so the floats come out bit-identical.
func toFleet(vms []PlacedVM, catalog []VMType) *fleet {
	total := 0
	for i := range vms {
		total += len(vms[i].Items)
	}
	f := &fleet{catalog: catalog, vms: make([]*vm, len(vms))}
	varena := make([]vm, len(vms))
	iarena := make([]item, 0, total)
	for i := range vms {
		pv := &vms[i]
		v := &varena[i]
		v.typ = pv.Type
		is := len(iarena)
		for _, it := range pv.Items {
			iarena = append(iarena, item{pod: it.Pod, cpu: it.CPU, mem: it.Mem})
			v.usedCPU += it.CPU
			v.usedMem += it.Mem
		}
		v.items = iarena[is:len(iarena):len(iarena)]
		f.vms[i] = v
	}
	return f
}

// fromFleet converts back, preserving order, into one flat item arena
// (full-capacity sub-slices keep any later append from clobbering a
// neighbor).
func fromFleet(f *fleet) []PlacedVM {
	total := 0
	for _, v := range f.vms {
		total += len(v.items)
	}
	out := make([]PlacedVM, 0, len(f.vms))
	arena := make([]PlacedItem, 0, total)
	for _, v := range f.vms {
		is := len(arena)
		for _, it := range v.items {
			arena = append(arena, PlacedItem{Pod: it.pod, CPU: it.cpu, Mem: it.mem})
		}
		out = append(out, PlacedVM{Type: v.typ, Items: arena[is:len(arena):len(arena)]})
	}
	return out
}

// OptimizeHostlo runs the paper's step-4 optimizer (consolidate + split
// + shrink passes, cost-monotone: the result never costs more than the
// input) over an existing placement and returns the improved one.
// Conversion preserves VM and item order, so feeding it the placement a
// whole-pod pass produced yields exactly the fleet improveHostlo would
// have produced in the static pipeline.
func OptimizeHostlo(vms []PlacedVM, catalog []VMType) []PlacedVM {
	if len(vms) == 0 {
		return nil
	}
	f := toFleet(vms, catalog)
	// Check a recycled scratch out of the pool for this call's private
	// fleet chain; everything the optimizer built aliases it, so it
	// goes back only after fromFleet has copied the result out.
	sc := scratchPool.Get().(*optScratch)
	f.scratch = sc
	out := fromFleet(improveHostlo(f))
	scratchPool.Put(sc)
	return out
}

// VMSig is the canonical content digest of one placed VM in comparable
// struct form: catalog type, item count and an order-independent
// 128-bit hash of the item multiset (two independent accumulators over
// per-item FNV-1a hashes; summing makes the digest invariant under
// item order, which is what "same machine" means). The cluster
// simulator's incremental reconciliation uses it as a map key to match
// optimizer output back onto existing nodes — a VM whose signature
// survives a pass is the same machine, so its cost clock keeps running
// — and the packing cache folds it into group keys. This is the
// reconciliation hot path: a comparable struct costs no allocation at
// all, where even raw-bit string formatting allocated per call.
type VMSig struct {
	Type  int
	Count int
	A, B  uint64
}

// VMSigOf digests one placed VM (see VMSig).
func VMSigOf(typ int, items []PlacedItem) VMSig {
	var a, b uint64
	for _, it := range items {
		h := itemHash(it)
		a += h
		b += mix64(h)
	}
	return VMSig{Type: typ, Count: len(items), A: a, B: b}
}

// VMSignature is VMSigOf rendered as a string, the original exported
// form (kept for callers that want a printable digest).
func VMSignature(typ int, items []PlacedItem) string {
	s := VMSigOf(typ, items)
	buf := make([]byte, 0, 48)
	buf = strconv.AppendInt(buf, int64(s.Type), 10)
	buf = append(buf, ';')
	buf = strconv.AppendInt(buf, int64(s.Count), 10)
	buf = append(buf, ';')
	buf = strconv.AppendUint(buf, s.A, 16)
	buf = append(buf, ';')
	buf = strconv.AppendUint(buf, s.B, 16)
	return string(buf)
}

// itemHash is FNV-1a over the item's pod name and the raw bits of its
// requests — exact float identity, no decimal rounding.
func itemHash(it PlacedItem) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(it.Pod); i++ {
		h = (h ^ uint64(it.Pod[i])) * prime64
	}
	for _, bits := range [2]uint64{math.Float64bits(it.CPU), math.Float64bits(it.Mem)} {
		for s := 0; s < 64; s += 8 {
			h = (h ^ (bits >> s & 0xff)) * prime64
		}
	}
	return h
}

// PlacementCostPerH prices a placement per hour (sequential sum in VM
// order, matching the internal fleet costing exactly).
func PlacementCostPerH(vms []PlacedVM, catalog []VMType) float64 {
	var c float64
	for _, v := range vms {
		c += catalog[v.Type].PricePerH
	}
	return c
}
