// Package cloudsim reproduces the paper's Hostlo cost simulation
// (§5.3.1, Fig. 9): for each user, price the VMs needed to host their
// pods under Kubernetes' whole-pod placement versus Hostlo's
// container-level placement, using the AWS EC2 m5 on-demand catalog of
// Table 2.
package cloudsim

// VMType is one catalog entry. Relative capacities are fractions of the
// largest model (m5.24xlarge: 96 vCPUs, 384 GB), matching how the Google
// trace expresses requests.
type VMType struct {
	Name      string
	VCPU      int
	MemGB     int
	RelCPU    float64
	RelMem    float64
	PricePerH float64 // USD per hour
}

// Catalog returns Table 2 verbatim: the AWS EC2 m5 on-demand models the
// paper simulates with.
func Catalog() []VMType {
	return []VMType{
		{Name: "large", VCPU: 2, MemGB: 8, RelCPU: 0.0208, RelMem: 0.0208, PricePerH: 0.112},
		{Name: "xlarge", VCPU: 4, MemGB: 16, RelCPU: 0.0417, RelMem: 0.0417, PricePerH: 0.224},
		{Name: "2xlarge", VCPU: 8, MemGB: 32, RelCPU: 0.0833, RelMem: 0.0833, PricePerH: 0.448},
		{Name: "4xlarge", VCPU: 16, MemGB: 64, RelCPU: 0.1667, RelMem: 0.1667, PricePerH: 0.896},
		{Name: "12xlarge", VCPU: 48, MemGB: 192, RelCPU: 0.5, RelMem: 0.5, PricePerH: 2.689},
		{Name: "24xlarge", VCPU: 96, MemGB: 384, RelCPU: 1, RelMem: 1, PricePerH: 5.376},
	}
}

// cheapestFitting returns the cheapest type able to host (cpu, mem), or
// -1 when nothing fits (the request exceeds the largest machine).
func cheapestFitting(catalog []VMType, cpu, mem float64) int {
	best := -1
	for i, t := range catalog {
		if t.RelCPU >= cpu && t.RelMem >= mem {
			if best == -1 || t.PricePerH < catalog[best].PricePerH {
				best = i
			}
		}
	}
	return best
}
