// Package netperf reimplements the paper's micro-benchmark (§5.1) over
// the simulated stack: TCP_STREAM measures bulk throughput on one stream
// connection, UDP_RR measures synchronous request/response latency —
// both swept over message sizes, exactly the two modes the paper uses
// for Figs. 2, 4 and 10.
//
// Real Netperf runs for 20 wall-clock seconds; the simulator is
// deterministic and reaches steady state within milliseconds of virtual
// time, so the default measurement window is far shorter with identical
// information content.
package netperf

import (
	"time"

	"nestless/internal/netsim"
	"nestless/internal/sim"
)

// StreamConfig parameterises one TCP_STREAM run.
type StreamConfig struct {
	Client, Server *netsim.NetNS
	DialAddr       netsim.IPv4
	Port           uint16
	MsgSize        int
	// Warmup is excluded from measurement; Duration is the measured
	// window. Zero values pick the defaults (30 ms / 120 ms).
	Warmup, Duration time.Duration
	// Burst is the number of messages the sender keeps queued (0 = 16).
	Burst int
}

// StreamResult is one TCP_STREAM measurement.
type StreamResult struct {
	MsgSize        int
	Bytes          int
	Messages       int
	ThroughputMbps float64
	Elapsed        time.Duration
}

// RunTCPStream executes one bulk-transfer measurement.
func RunTCPStream(eng *sim.Engine, cfg StreamConfig) StreamResult {
	warmup := cfg.Warmup
	if warmup == 0 {
		warmup = 30 * time.Millisecond
	}
	dur := cfg.Duration
	if dur == 0 {
		dur = 120 * time.Millisecond
	}
	burst := cfg.Burst
	if burst == 0 {
		burst = 64
	}

	start := eng.Now()
	measureFrom := start + warmup
	measureTo := measureFrom + dur

	var bytes, msgs int
	if _, err := cfg.Server.ListenStream(cfg.Port, func(c *netsim.StreamConn) {
		c.OnMessage = func(size int, _ interface{}, _ sim.Time) {
			now := eng.Now()
			if now >= measureFrom && now < measureTo {
				bytes += size
				msgs++
			}
		}
	}); err != nil {
		panic("netperf: server bind: " + err.Error())
	}

	stopped := false
	conn := cfg.Client.DialStream(cfg.DialAddr, cfg.Port, nil)
	// feed keeps the connection loaded up to its flow-control window
	// (in-flight plus queued bytes), like a sender blocked on a full
	// socket buffer. Bounding by the window is essential: OnDrain can
	// fire on every pump, and an unconditional refill would snowball.
	feed := func() {
		if stopped {
			return
		}
		for i := 0; i < burst && conn.InFlight()+conn.QueuedBytes() < conn.Window(); i++ {
			conn.SendMessage(cfg.MsgSize, nil)
		}
	}
	conn.OnDrain = feed
	// Queue the first message now; once the handshake completes pump()
	// flushes it, fires OnDrain, and feed keeps the pipe full.
	conn.SendMessage(cfg.MsgSize, nil)

	eng.RunUntil(measureTo)
	stopped = true
	conn.OnDrain = nil

	return StreamResult{
		MsgSize:        cfg.MsgSize,
		Bytes:          bytes,
		Messages:       msgs,
		ThroughputMbps: float64(bytes) * 8 / dur.Seconds() / 1e6,
		Elapsed:        dur,
	}
}

// RRConfig parameterises one UDP_RR run.
type RRConfig struct {
	Client, Server *netsim.NetNS
	DialAddr       netsim.IPv4
	Port           uint16
	MsgSize        int
	// Warmup transactions are discarded; then transactions run until
	// Duration elapses. Zero values pick defaults (20 tx / 100 ms).
	WarmupTx int
	Duration time.Duration
}

// RRResult is one UDP_RR measurement.
type RRResult struct {
	MsgSize      int
	Transactions int
	// MeanRTT and StddevRTT summarise the per-transaction round trips;
	// PerSecond is the paper's "request/response rate".
	MeanRTT   time.Duration
	StddevRTT time.Duration
	P99RTT    time.Duration
	PerSecond float64
}

// RunUDPRR executes one synchronous request/response measurement.
func RunUDPRR(eng *sim.Engine, cfg RRConfig) RRResult {
	warmupTx := cfg.WarmupTx
	if warmupTx == 0 {
		warmupTx = 20
	}
	dur := cfg.Duration
	if dur == 0 {
		dur = 100 * time.Millisecond
	}

	// Server: echo every request at the same size.
	srv, err := cfg.Server.BindUDP(cfg.Port, nil)
	if err != nil {
		panic("netperf: server bind: " + err.Error())
	}
	srv.OnRecv = func(p *netsim.Packet) {
		srv.SendTo(p.Src, p.SrcPort, cfg.MsgSize, nil)
	}

	var rtts sim.Series
	var sentAt sim.Time
	deadline := sim.Time(0)
	tx := 0
	var cli *netsim.UDPSocket
	sendNext := func() {
		sentAt = eng.Now()
		cli.SendTo(cfg.DialAddr, cfg.Port, cfg.MsgSize, nil)
	}
	cli, err = cfg.Client.BindUDP(0, nil)
	if err != nil {
		panic("netperf: client bind: " + err.Error())
	}
	cli.OnRecv = func(p *netsim.Packet) {
		rtt := eng.Now() - sentAt
		tx++
		if tx == warmupTx {
			deadline = eng.Now() + dur
		}
		if tx > warmupTx {
			rtts.Add(float64(rtt))
		}
		if deadline == 0 || eng.Now() < deadline {
			sendNext()
		}
	}
	sendNext()
	eng.Run()

	res := RRResult{
		MsgSize:      cfg.MsgSize,
		Transactions: rtts.N(),
		MeanRTT:      time.Duration(rtts.Mean()),
		StddevRTT:    time.Duration(rtts.Stddev()),
		P99RTT:       time.Duration(rtts.Percentile(99)),
	}
	if res.MeanRTT > 0 {
		res.PerSecond = 1 / res.MeanRTT.Seconds()
	}
	return res
}

// Sizes is the paper's message-size sweep (Figs. 4 and 10 span small
// control messages up to multi-segment payloads).
var Sizes = []int{64, 128, 256, 512, 1024, 1280, 2048, 4096, 8192, 16384}

// RRSizes caps the request/response sweep at a single MTU-sized datagram
// (UDP_RR does not fragment in the paper's runs either).
var RRSizes = []int{64, 128, 256, 512, 1024, 1280, 1400}
