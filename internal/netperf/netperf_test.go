package netperf

import (
	"testing"
	"time"

	"nestless/internal/netsim"
	"nestless/internal/sim"
)

// pair builds two namespaces joined by a veth.
func pair() (*sim.Engine, *netsim.NetNS, *netsim.NetNS) {
	eng := sim.New(1)
	eng.MaxSteps = 500_000_000
	w := netsim.NewNet(eng)
	a := w.NewNS("a", netsim.NewCPU(eng, "a", 1, nil))
	b := w.NewNS("b", netsim.NewCPU(eng, "b", 1, nil))
	ia, ib := netsim.NewVethPair(a, "eth0", b, "eth0")
	subnet := netsim.MustPrefix(netsim.IP(10, 0, 0, 0), 24)
	ia.SetAddr(netsim.IP(10, 0, 0, 1), subnet)
	ib.SetAddr(netsim.IP(10, 0, 0, 2), subnet)
	return eng, a, b
}

func TestTCPStreamMeasuresThroughput(t *testing.T) {
	eng, a, b := pair()
	res := RunTCPStream(eng, StreamConfig{
		Client: a, Server: b,
		DialAddr: netsim.IP(10, 0, 0, 2), Port: 5001,
		MsgSize: 1280,
	})
	if res.ThroughputMbps <= 0 {
		t.Fatalf("throughput = %v", res.ThroughputMbps)
	}
	if res.Messages == 0 || res.Bytes == 0 {
		t.Fatal("no messages measured")
	}
	if res.Bytes != res.Messages*1280 {
		t.Fatalf("bytes %d != msgs %d × 1280", res.Bytes, res.Messages)
	}
}

func TestTCPStreamThroughputGrowsWithMessageSize(t *testing.T) {
	run := func(size int) float64 {
		eng, a, b := pair()
		return RunTCPStream(eng, StreamConfig{
			Client: a, Server: b,
			DialAddr: netsim.IP(10, 0, 0, 2), Port: 5001,
			MsgSize: size,
		}).ThroughputMbps
	}
	small, large := run(64), run(8192)
	if large <= small*2 {
		t.Fatalf("per-message cost not amortized: 64B=%.1f Mbps, 8K=%.1f Mbps", small, large)
	}
}

func TestTCPStreamDeterministic(t *testing.T) {
	run := func() StreamResult {
		eng, a, b := pair()
		return RunTCPStream(eng, StreamConfig{
			Client: a, Server: b,
			DialAddr: netsim.IP(10, 0, 0, 2), Port: 5001,
			MsgSize: 1024,
		})
	}
	r1, r2 := run(), run()
	if r1 != r2 {
		t.Fatalf("same seed diverged: %+v vs %+v", r1, r2)
	}
}

func TestUDPRRMeasuresLatency(t *testing.T) {
	eng, a, b := pair()
	res := RunUDPRR(eng, RRConfig{
		Client: a, Server: b,
		DialAddr: netsim.IP(10, 0, 0, 2), Port: 7001,
		MsgSize: 256,
	})
	if res.Transactions < 100 {
		t.Fatalf("transactions = %d, want plenty", res.Transactions)
	}
	if res.MeanRTT <= 0 || res.PerSecond <= 0 {
		t.Fatalf("bad RTT stats: %+v", res)
	}
	if res.P99RTT < res.MeanRTT/2 {
		t.Fatalf("p99 (%v) implausibly below mean (%v)", res.P99RTT, res.MeanRTT)
	}
}

func TestUDPRRLatencyGrowsWithExtraHop(t *testing.T) {
	// Same endpoints, but routed through a middle namespace: RTT must
	// increase.
	direct := func() time.Duration {
		eng, a, b := pair()
		return RunUDPRR(eng, RRConfig{
			Client: a, Server: b,
			DialAddr: netsim.IP(10, 0, 0, 2), Port: 7001, MsgSize: 512,
		}).MeanRTT
	}()

	eng := sim.New(1)
	eng.MaxSteps = 500_000_000
	w := netsim.NewNet(eng)
	a := w.NewNS("a", netsim.NewCPU(eng, "a", 1, nil))
	r := w.NewNS("r", netsim.NewCPU(eng, "r", 1, nil))
	b := w.NewNS("b", netsim.NewCPU(eng, "b", 1, nil))
	r.Forward = true
	ia, ra := netsim.NewVethPair(a, "eth0", r, "pa")
	rb, ib := netsim.NewVethPair(r, "pb", b, "eth0")
	n1 := netsim.MustPrefix(netsim.IP(10, 1, 0, 0), 24)
	n2 := netsim.MustPrefix(netsim.IP(10, 2, 0, 0), 24)
	ia.SetAddr(netsim.IP(10, 1, 0, 2), n1)
	ra.SetAddr(netsim.IP(10, 1, 0, 1), n1)
	rb.SetAddr(netsim.IP(10, 2, 0, 1), n2)
	ib.SetAddr(netsim.IP(10, 2, 0, 2), n2)
	a.AddRoute(netsim.Route{Dst: netsim.MustPrefix(netsim.IPv4{}, 0), Via: netsim.IP(10, 1, 0, 1), Dev: "eth0"})
	b.AddRoute(netsim.Route{Dst: netsim.MustPrefix(netsim.IPv4{}, 0), Via: netsim.IP(10, 2, 0, 1), Dev: "eth0"})
	routed := RunUDPRR(eng, RRConfig{
		Client: a, Server: b,
		DialAddr: netsim.IP(10, 2, 0, 2), Port: 7001, MsgSize: 512,
	}).MeanRTT

	if routed <= direct {
		t.Fatalf("extra hop did not add latency: direct=%v routed=%v", direct, routed)
	}
}

func TestSweepListsAreSane(t *testing.T) {
	if len(Sizes) == 0 || len(RRSizes) == 0 {
		t.Fatal("empty sweeps")
	}
	for i := 1; i < len(Sizes); i++ {
		if Sizes[i] <= Sizes[i-1] {
			t.Fatal("Sizes not increasing")
		}
	}
	if RRSizes[len(RRSizes)-1] > 1472 {
		t.Fatal("RR sweep exceeds a single MTU datagram")
	}
}
