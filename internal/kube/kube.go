// Package kube is the pod orchestrator of the reproduction: pod specs,
// nodes (VMs running a container engine and a kubelet-like agent), the
// "most requested" scheduler policy the paper simulates against (§5.3.1),
// and pod deployment through CNI plugins — including the capability the
// paper adds: splitting one pod across several VMs with a Hostlo
// localhost.
package kube

import (
	"fmt"
	"sort"

	"nestless/internal/cni"
	"nestless/internal/container"
	"nestless/internal/core"
	"nestless/internal/mempipe"
	"nestless/internal/netsim"
	"nestless/internal/virtfs"
	"nestless/internal/vmm"
)

// ContainerSpec is one container of a pod.
type ContainerSpec struct {
	Name  string
	Image string
	// CPU is the request in cores; MemMB in MiB.
	CPU   float64
	MemMB int
	Ports []container.PortMap
}

// PodSpec describes a pod to deploy.
type PodSpec struct {
	Name       string
	Containers []ContainerSpec
	// Network names the primary CNI plugin ("bridge-nat" default,
	// "brfusion" for the paper's de-duplicated stack).
	Network string
	// AllowSplit permits cross-VM placement backed by Hostlo when no
	// single node fits the whole pod.
	AllowSplit bool
	// NodeName pins the pod to one node (a node selector), bypassing
	// scoring. Splitting never applies to pinned pods.
	NodeName string
	// Volumes names shared volumes mounted into every part of the pod.
	// For split pods the volume is a host-backed VirtFS (§4.3.1), so all
	// parts observe one coherent filesystem.
	Volumes []string
	// SharedMemory provisions a MemPipe (§4.3.2) between the parts of a
	// split pod for bulk intra-pod data (ignored for unsplit pods, whose
	// containers already share memory natively).
	SharedMemory bool
}

// TotalCPU sums the pod's CPU requests.
func (s PodSpec) TotalCPU() float64 {
	var t float64
	for _, c := range s.Containers {
		t += c.CPU
	}
	return t
}

// TotalMemMB sums the pod's memory requests.
func (s PodSpec) TotalMemMB() int {
	var t int
	for _, c := range s.Containers {
		t += c.MemMB
	}
	return t
}

// Node is one schedulable VM.
type Node struct {
	Name   string
	VM     *vmm.VM
	Engine *container.Engine
	CNI    *cni.Registry

	CapCPU   float64
	CapMemMB int

	reqCPU   float64
	reqMemMB int
}

// NewNode wraps a VM and its container engine as a cluster node,
// deriving capacity from the VM size.
func NewNode(vm *vmm.VM, engine *container.Engine) *Node {
	return &Node{
		Name:     vm.Name,
		VM:       vm,
		Engine:   engine,
		CNI:      cni.NewRegistry(),
		CapCPU:   float64(vm.VCPUs),
		CapMemMB: vm.MemoryMB,
	}
}

// FreeCPU returns unrequested CPU capacity.
func (n *Node) FreeCPU() float64 { return n.CapCPU - n.reqCPU }

// FreeMemMB returns unrequested memory capacity.
func (n *Node) FreeMemMB() int { return n.CapMemMB - n.reqMemMB }

// RequestedFraction scores the node for the "most requested" policy:
// the mean of the CPU and memory requested fractions.
func (n *Node) RequestedFraction() float64 {
	if n.CapCPU == 0 || n.CapMemMB == 0 {
		return 0
	}
	return (n.reqCPU/n.CapCPU + float64(n.reqMemMB)/float64(n.CapMemMB)) / 2
}

// fits reports whether the given request fits the node's free capacity.
func (n *Node) fits(cpu float64, memMB int) bool {
	return n.FreeCPU() >= cpu && n.FreeMemMB() >= memMB
}

func (n *Node) commit(cpu float64, memMB int) {
	n.reqCPU += cpu
	n.reqMemMB += memMB
}

func (n *Node) release(cpu float64, memMB int) {
	n.reqCPU -= cpu
	n.reqMemMB -= memMB
	if n.reqCPU < 0 {
		n.reqCPU = 0
	}
	if n.reqMemMB < 0 {
		n.reqMemMB = 0
	}
}

// PodPart is the fraction of a pod deployed on one node.
type PodPart struct {
	Node       *Node
	Sandbox    *container.Container
	Containers []*container.Container
	// LocalAddr is this part's address on the pod-localhost segment:
	// 127.0.0.1 for unsplit pods, the Hostlo endpoint otherwise.
	LocalAddr netsim.IPv4
	// PodIP is the part's primary-network address.
	PodIP netsim.IPv4
	// Mounts are the part's views of the pod's shared volumes, keyed by
	// volume name.
	Mounts map[string]*virtfs.Mount

	specs []ContainerSpec
}

// Pod is a deployed pod.
type Pod struct {
	Spec     PodSpec
	Parts    []*PodPart
	HostloID string
	// Volumes are the pod's shared filesystems, keyed by name.
	Volumes map[string]*virtfs.FS
	// Pipes are MemPipe channels between split parts, keyed by the part
	// index pair (i < j).
	Pipes map[[2]int]*mempipe.Pipe
}

// Split reports whether the pod spans more than one VM.
func (p *Pod) Split() bool { return len(p.Parts) > 1 }

// Part returns the part hosting the named container, or nil.
func (p *Pod) Part(containerName string) *PodPart {
	for _, part := range p.Parts {
		for _, cs := range part.specs {
			if cs.Name == containerName {
				return part
			}
		}
	}
	return nil
}

// Cluster is the orchestrator.
type Cluster struct {
	Ctrl  *core.Controller
	nodes []*Node
	pods  map[string]*Pod
}

// NewCluster builds an orchestrator over one host's controller.
func NewCluster(ctrl *core.Controller) *Cluster {
	return &Cluster{Ctrl: ctrl, pods: make(map[string]*Pod)}
}

// AddNode registers a node.
func (c *Cluster) AddNode(n *Node) { c.nodes = append(c.nodes, n) }

// Nodes returns the registered nodes.
func (c *Cluster) Nodes() []*Node { return append([]*Node(nil), c.nodes...) }

// Pod returns a deployed pod by name, or nil.
func (c *Cluster) Pod(name string) *Pod { return c.pods[name] }

// placement is one scheduling decision: which containers land on which
// node.
type placement struct {
	node  *Node
	specs []ContainerSpec
}

// ErrUnschedulable reports that no placement satisfies the request.
type ErrUnschedulable struct{ Pod string }

func (e ErrUnschedulable) Error() string {
	return fmt.Sprintf("kube: pod %q unschedulable", e.Pod)
}

// schedule implements the paper's policy: try to place the whole pod on
// the node with the most requested resources among those that fit
// (§5.3.1 "most requested"); if none fits and splitting is allowed,
// spread containers (biggest first) across the most-requested feasible
// nodes.
func (c *Cluster) schedule(spec PodSpec) ([]placement, error) {
	cpu, mem := spec.TotalCPU(), spec.TotalMemMB()

	if spec.NodeName != "" {
		for _, n := range c.nodes {
			if n.Name == spec.NodeName {
				if !n.fits(cpu, mem) {
					return nil, ErrUnschedulable{Pod: spec.Name}
				}
				return []placement{{node: n, specs: spec.Containers}}, nil
			}
		}
		return nil, ErrUnschedulable{Pod: spec.Name}
	}

	var whole []*Node
	for _, n := range c.nodes {
		if n.fits(cpu, mem) {
			whole = append(whole, n)
		}
	}
	if len(whole) > 0 {
		best := whole[0]
		for _, n := range whole[1:] {
			if n.RequestedFraction() > best.RequestedFraction() {
				best = n
			}
		}
		return []placement{{node: best, specs: spec.Containers}}, nil
	}

	if !spec.AllowSplit {
		return nil, ErrUnschedulable{Pod: spec.Name}
	}

	// Split: biggest container first, most-requested feasible node, with
	// tentative commitments so one node is not over-packed.
	specs := append([]ContainerSpec(nil), spec.Containers...)
	sort.SliceStable(specs, func(i, j int) bool {
		return specs[i].CPU+float64(specs[i].MemMB)/1024 > specs[j].CPU+float64(specs[j].MemMB)/1024
	})
	tentative := map[*Node][2]float64{} // cpu, mem committed during this pass
	byNode := map[*Node][]ContainerSpec{}
	var order []*Node
	for _, cs := range specs {
		var best *Node
		for _, n := range c.nodes {
			t := tentative[n]
			if n.FreeCPU()-t[0] >= cs.CPU && float64(n.FreeMemMB())-t[1] >= float64(cs.MemMB) {
				if best == nil || n.RequestedFraction() > best.RequestedFraction() {
					best = n
				}
			}
		}
		if best == nil {
			return nil, ErrUnschedulable{Pod: spec.Name}
		}
		t := tentative[best]
		tentative[best] = [2]float64{t[0] + cs.CPU, t[1] + float64(cs.MemMB)}
		if len(byNode[best]) == 0 {
			order = append(order, best)
		}
		byNode[best] = append(byNode[best], cs)
	}
	out := make([]placement, 0, len(order))
	for _, n := range order {
		out = append(out, placement{node: n, specs: byNode[n]})
	}
	return out, nil
}
