package kube

import (
	"errors"
	"fmt"
	"time"

	"nestless/internal/cni"
	"nestless/internal/container"
	"nestless/internal/core"
	"nestless/internal/faults"
	"nestless/internal/hostlocni"
	"nestless/internal/mempipe"
	"nestless/internal/netsim"
	"nestless/internal/virtfs"
	"nestless/internal/vmm"
)

// Deploy schedules and starts a pod, invoking done when every container
// runs. Split pods get a Hostlo provisioned across their VMs before any
// part starts, so the pod-localhost exists when the containers come up.
func (c *Cluster) Deploy(spec PodSpec, done func(*Pod, error)) {
	if _, dup := c.pods[spec.Name]; dup {
		done(nil, fmt.Errorf("kube: pod %q already deployed", spec.Name))
		return
	}
	if len(spec.Containers) == 0 {
		done(nil, fmt.Errorf("kube: pod %q has no containers", spec.Name))
		return
	}
	placements, err := c.schedule(spec)
	if err != nil {
		done(nil, err)
		return
	}

	pod := &Pod{Spec: spec}
	for _, pl := range placements {
		pl.node.commit(totalCPU(pl.specs), totalMem(pl.specs))
		pod.Parts = append(pod.Parts, &PodPart{Node: pl.node, specs: pl.specs})
	}

	// fail unwinds whatever the partial deploy already built — running
	// containers from earlier parts, the Hostlo, committed resources —
	// so a failed Deploy leaves the cluster exactly as it found it.
	fail := func(err error) {
		if derr := c.destroy(pod); derr != nil {
			err = errors.Join(err, derr)
		}
		done(nil, err)
	}

	if len(pod.Parts) == 1 {
		pod.Parts[0].LocalAddr = netsim.IP(127, 0, 0, 1)
		c.deployParts(pod, nil, func(err error) {
			if err != nil {
				fail(err)
				return
			}
			c.attachResources(pod)
			c.pods[spec.Name] = pod
			done(pod, nil)
		})
		return
	}

	// Cross-VM pod: provision the Hostlo first (§4.1 steps 1–3), with a
	// retry loop around the whole multi-VM conversation. The watchdog is
	// generous — the sequence spans several QMP round trips — and arms
	// only when fault injection can actually stall one.
	vms := make([]*vmm.VM, len(pod.Parts))
	for i, part := range pod.Parts {
		vms[i] = part.Node.VM
	}
	host := c.Ctrl.Host()
	type hostloResult struct {
		hid string
		eps []core.EndpointInfo
	}
	pol := faults.DefaultRetryPolicy()
	pol.Timeout = 250 * time.Millisecond
	if host.Net.Faults == nil {
		pol.Timeout = 0
	}
	if rec := host.Net.Rec; rec != nil {
		pol.OnRetry = func(int, error) { rec.Metrics().Counter("retry/hostlo").Inc() }
	}
	faults.Retry(host.Eng, pol,
		func(_ int, complete func(hostloResult, error)) {
			c.Ctrl.ProvisionHostlo(vms, func(hid string, eps []core.EndpointInfo, err error) {
				complete(hostloResult{hid: hid, eps: eps}, err)
			})
		},
		func(r hostloResult, err error) {
			// Provision landed after its watchdog fired: a fresh attempt
			// owns the pod now, so unwind this orphaned one completely.
			if err == nil {
				for _, ep := range r.eps {
					c.Ctrl.ReleaseDevice(host.VM(ep.VM), ep.DeviceID, nil)
				}
				c.Ctrl.ReleaseHostlo(r.hid, nil)
			}
		},
		func(r hostloResult, _ int, err error) {
			if err != nil {
				fail(err)
				return
			}
			pod.HostloID = r.hid
			atts := make([]*hostlocni.Attachment, len(pod.Parts))
			for i, part := range pod.Parts {
				part.LocalAddr = hostlocni.EndpointAddr(i)
				atts[i] = &hostlocni.Attachment{
					VM:       part.Node.VM,
					Endpoint: r.eps[i],
					Addr:     part.LocalAddr,
					Ctrl:     c.Ctrl,
				}
			}
			c.deployParts(pod, atts, func(err error) {
				if err != nil {
					fail(err)
					return
				}
				c.attachResources(pod)
				c.pods[spec.Name] = pod
				done(pod, nil)
			})
		})
}

// attachResources provisions the pod's non-network shared resources
// (§4.3): VirtFS volumes mounted into every part, and — for split pods
// that ask for it — a MemPipe between each pair of parts.
func (c *Cluster) attachResources(pod *Pod) {
	host := c.Ctrl.Host()
	if len(pod.Spec.Volumes) > 0 {
		pod.Volumes = make(map[string]*virtfs.FS, len(pod.Spec.Volumes))
		for _, name := range pod.Spec.Volumes {
			fs := virtfs.New(pod.Spec.Name+"/"+name, host.CPU)
			pod.Volumes[name] = fs
			for _, part := range pod.Parts {
				if part.Mounts == nil {
					part.Mounts = make(map[string]*virtfs.Mount)
				}
				part.Mounts[name] = fs.Mount(part.Node.Name, part.Sandbox.NS.CPU)
			}
		}
	}
	if pod.Spec.SharedMemory && len(pod.Parts) > 1 {
		pod.Pipes = make(map[[2]int]*mempipe.Pipe)
		for i := 0; i < len(pod.Parts); i++ {
			for j := i + 1; j < len(pod.Parts); j++ {
				pipe := mempipe.New(
					fmt.Sprintf("%s/%d-%d", pod.Spec.Name, i, j),
					host.Eng, 1<<20,
					pod.Parts[i].Sandbox.NS.CPU,
					pod.Parts[j].Sandbox.NS.CPU,
				)
				pod.Pipes[[2]int{i, j}] = pipe
			}
		}
	}
}

// deployParts starts every part sequentially: sandbox (with CNI chain)
// then member containers.
func (c *Cluster) deployParts(pod *Pod, atts []*hostlocni.Attachment, done func(error)) {
	var nextPart func(i int)
	nextPart = func(i int) {
		if i >= len(pod.Parts) {
			done(nil)
			return
		}
		part := pod.Parts[i]
		primaryName := pod.Spec.Network
		if primaryName == "" {
			primaryName = "bridge-nat"
		}
		primary, err := part.Node.CNI.Lookup(primaryName)
		if err != nil {
			done(err)
			return
		}
		var prov cni.Plugin = primary
		if atts != nil {
			prov = &cni.Chain{Plugins: []cni.Plugin{primary, atts[i]}}
		}
		var ports []container.PortMap
		for _, cs := range part.specs {
			ports = append(ports, cs.Ports...)
		}
		sandboxName := fmt.Sprintf("%s-%s", pod.Spec.Name, part.Node.Name)
		ensureImage(part.Node.Engine, "pause")
		part.Node.Engine.RunSandbox(sandboxName, "app/"+pod.Spec.Name, prov, ports, func(sb *container.Container, err error) {
			if err != nil {
				done(err)
				return
			}
			part.Sandbox = sb
			part.PodIP = sb.IP
			c.startContainers(pod, part, 0, func(err error) {
				if err != nil {
					done(err)
					return
				}
				nextPart(i + 1)
			})
		})
	}
	nextPart(0)
}

// startContainers launches a part's containers one by one, joining the
// sandbox namespace.
func (c *Cluster) startContainers(pod *Pod, part *PodPart, i int, done func(error)) {
	if i >= len(part.specs) {
		done(nil)
		return
	}
	cs := part.specs[i]
	ensureImage(part.Node.Engine, cs.Image)
	name := fmt.Sprintf("%s-%s", pod.Spec.Name, cs.Name)
	part.Node.Engine.Run(container.Spec{
		Name:         name,
		Image:        cs.Image,
		Entity:       "app/" + pod.Spec.Name,
		JoinPod:      part.Sandbox,
		CPURequest:   cs.CPU,
		MemRequestMB: cs.MemMB,
	}, func(ctr *container.Container, err error) {
		if err != nil {
			done(err)
			return
		}
		part.Containers = append(part.Containers, ctr)
		c.startContainers(pod, part, i+1, done)
	})
}

// Delete tears a pod down and returns its resources. Release errors are
// reported (joined) but never stop the teardown.
func (c *Cluster) Delete(name string) error {
	pod, ok := c.pods[name]
	if !ok {
		return fmt.Errorf("kube: no pod %q", name)
	}
	delete(c.pods, name)
	return c.destroy(pod)
}

// destroy stops a pod's containers and sandboxes, releases its Hostlo
// device, and returns committed node resources. Shared by Delete and
// the mid-deploy failure path (where later parts may not exist yet).
// The Hostlo release retries asynchronously in sim time — it has to
// outwait the endpoint device_dels racing it on the monitors — so its
// outcome surfaces through telemetry and the host leak checker.
func (c *Cluster) destroy(pod *Pod) error {
	var errs []error
	for _, part := range pod.Parts {
		for _, ctr := range part.Containers {
			if err := part.Node.Engine.Stop(ctr.Name); err != nil {
				errs = append(errs, err)
			}
		}
		part.Containers = nil
		if part.Sandbox != nil {
			if err := part.Node.Engine.Stop(part.Sandbox.Name); err != nil {
				errs = append(errs, err)
			}
			part.Sandbox = nil
		}
	}
	if pod.HostloID != "" {
		c.Ctrl.ReleaseHostlo(pod.HostloID, nil)
		pod.HostloID = ""
	}
	c.teardown(pod)
	return errors.Join(errs...)
}

// teardown returns committed resources.
func (c *Cluster) teardown(pod *Pod) {
	for _, part := range pod.Parts {
		part.Node.release(totalCPU(part.specs), totalMem(part.specs))
	}
}

func totalCPU(specs []ContainerSpec) float64 {
	var t float64
	for _, s := range specs {
		t += s.CPU
	}
	return t
}

func totalMem(specs []ContainerSpec) int {
	var t int
	for _, s := range specs {
		t += s.MemMB
	}
	return t
}

// ensureImage makes deploys self-contained: missing images are pulled
// implicitly, as kubelet would.
func ensureImage(e *container.Engine, name string) {
	if !e.HasImage(name) {
		e.Pull(container.Image{Name: name, SizeMB: 100})
	}
}
