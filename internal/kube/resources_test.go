package kube

import (
	"bytes"
	"testing"

	"nestless/internal/sim"
)

func TestSplitPodSharedVolume(t *testing.T) {
	tc := newTestCluster(t, 2)
	pod := tc.deploy(t, PodSpec{
		Name:       "data",
		AllowSplit: true,
		Volumes:    []string{"shared"},
		Containers: []ContainerSpec{
			{Name: "writer", Image: "app", CPU: 4, MemMB: 1024},
			{Name: "reader", Image: "app", CPU: 4, MemMB: 1024},
		},
	})
	if !pod.Split() {
		t.Fatal("pod was not split")
	}
	if pod.Volumes["shared"] == nil {
		t.Fatal("volume not provisioned")
	}
	w := pod.Parts[0].Mounts["shared"]
	r := pod.Parts[1].Mounts["shared"]
	if w == nil || r == nil {
		t.Fatal("mounts missing on a part")
	}

	// Part 0 writes through its VirtFS mount; part 1 — on the other VM —
	// reads the same bytes (§4.3.1's coherence requirement).
	var werr error
	w.Write("state.json", []byte(`{"leader":"part0"}`), func(err error) { werr = err })
	tc.eng.Run()
	if werr != nil {
		t.Fatal(werr)
	}
	var got []byte
	r.Read("state.json", func(data []byte, err error) {
		if err != nil {
			t.Fatal(err)
		}
		got = data
	})
	tc.eng.Run()
	if !bytes.Equal(got, []byte(`{"leader":"part0"}`)) {
		t.Fatalf("cross-VM volume read %q", got)
	}
}

func TestUnsplitPodVolume(t *testing.T) {
	tc := newTestCluster(t, 1)
	pod := tc.deploy(t, PodSpec{
		Name:    "solo",
		Volumes: []string{"v"},
		Containers: []ContainerSpec{
			{Name: "c", Image: "app", CPU: 1, MemMB: 128},
		},
	})
	m := pod.Parts[0].Mounts["v"]
	if m == nil {
		t.Fatal("single-part pod did not get its volume mount")
	}
	var ok bool
	m.Write("f", []byte("x"), func(err error) { ok = err == nil })
	tc.eng.Run()
	if !ok {
		t.Fatal("volume write failed")
	}
	if pod.Pipes != nil {
		t.Fatal("unsplit pod must not get mempipes")
	}
}

func TestSplitPodSharedMemory(t *testing.T) {
	tc := newTestCluster(t, 2)
	pod := tc.deploy(t, PodSpec{
		Name:         "shm",
		AllowSplit:   true,
		SharedMemory: true,
		Containers: []ContainerSpec{
			{Name: "a", Image: "app", CPU: 4, MemMB: 1024},
			{Name: "b", Image: "app", CPU: 4, MemMB: 1024},
		},
	})
	pipe := pod.Pipes[[2]int{0, 1}]
	if pipe == nil {
		t.Fatal("split pod did not get a mempipe")
	}
	a, b := pipe.Endpoints()
	var got string
	var oneWay sim.Time
	b.OnRecv = func(data []byte, sentAt sim.Time) {
		got = string(data)
		oneWay = tc.eng.Now() - sentAt
	}
	a.Send([]byte("bulk-payload"), nil)
	tc.eng.Run()
	if got != "bulk-payload" {
		t.Fatalf("mempipe delivered %q", got)
	}
	if oneWay <= 0 {
		t.Fatal("mempipe delivery took no time")
	}
}
