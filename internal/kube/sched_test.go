package kube

import (
	"testing"
	"testing/quick"
)

func TestNodeAccountingBasics(t *testing.T) {
	tc := newTestCluster(t, 1)
	n := tc.cluster.Nodes()[0]
	if n.CapCPU != 5 || n.CapMemMB != 4096 {
		t.Fatalf("capacity = %v/%v", n.CapCPU, n.CapMemMB)
	}
	if n.RequestedFraction() != 0 {
		t.Fatal("fresh node not at zero fraction")
	}
	n.commit(2.5, 2048)
	if got := n.RequestedFraction(); got != 0.5 {
		t.Fatalf("fraction = %v, want 0.5", got)
	}
	n.release(2.5, 2048)
	if n.FreeCPU() != 5 || n.FreeMemMB() != 4096 {
		t.Fatal("release did not restore capacity")
	}
	// Over-release clamps at zero.
	n.release(99, 99999)
	if n.FreeCPU() != 5 || n.FreeMemMB() != 4096 {
		t.Fatal("over-release corrupted accounting")
	}
}

func TestNodeNameSelector(t *testing.T) {
	tc := newTestCluster(t, 2)
	pod := tc.deploy(t, PodSpec{
		Name:     "pinned",
		NodeName: "vm2",
		Containers: []ContainerSpec{
			{Name: "c", Image: "app", CPU: 1, MemMB: 128},
		},
	})
	if pod.Parts[0].Node.Name != "vm2" {
		t.Fatalf("pinned pod landed on %s", pod.Parts[0].Node.Name)
	}
	var derr error
	tc.cluster.Deploy(PodSpec{
		Name:       "bad-pin",
		NodeName:   "vm99",
		Containers: []ContainerSpec{{Name: "c", Image: "app", CPU: 1, MemMB: 128}},
	}, func(_ *Pod, err error) { derr = err })
	tc.eng.Run()
	if derr == nil {
		t.Fatal("unknown node accepted")
	}
	// A pinned pod too big for its node is unschedulable even when other
	// nodes could host it.
	tc.cluster.Deploy(PodSpec{
		Name:       "pin-too-big",
		NodeName:   "vm1",
		Containers: []ContainerSpec{{Name: "c", Image: "app", CPU: 99, MemMB: 128}},
	}, func(_ *Pod, err error) { derr = err })
	tc.eng.Run()
	if derr == nil {
		t.Fatal("oversized pinned pod accepted")
	}
}

func TestSplitDisallowedFailsCleanly(t *testing.T) {
	tc := newTestCluster(t, 2)
	var derr error
	tc.cluster.Deploy(PodSpec{
		Name: "big",
		Containers: []ContainerSpec{
			{Name: "a", Image: "app", CPU: 4, MemMB: 512},
			{Name: "b", Image: "app", CPU: 4, MemMB: 512},
		},
	}, func(_ *Pod, err error) { derr = err })
	tc.eng.Run()
	if _, ok := derr.(ErrUnschedulable); !ok {
		t.Fatalf("err = %v, want ErrUnschedulable without AllowSplit", derr)
	}
	// Resources fully returned on failure.
	for _, n := range tc.cluster.Nodes() {
		if n.FreeCPU() != n.CapCPU {
			t.Fatalf("node %s leaked resources", n.Name)
		}
	}
	if derr.Error() == "" {
		t.Fatal("empty error string")
	}
}

// Property: scheduling any mix of feasible pods never overcommits a node
// and the split placement covers every container exactly once.
func TestScheduleNeverOvercommitsProperty(t *testing.T) {
	prop := func(sizes []uint8) bool {
		if len(sizes) == 0 || len(sizes) > 6 {
			return true
		}
		tc := newTestCluster(nil, 2)
		specs := make([]ContainerSpec, len(sizes))
		total := 0.0
		for i, s := range sizes {
			cpu := float64(s%4) + 0.5
			specs[i] = ContainerSpec{Name: string(rune('a' + i)), Image: "app", CPU: cpu, MemMB: 64}
			total += cpu
		}
		if total > 10 { // cannot fit the 2×5-core cluster at all
			return true
		}
		var pod *Pod
		tc.cluster.Deploy(PodSpec{Name: "p", AllowSplit: true, Containers: specs},
			func(p *Pod, err error) { pod = p })
		tc.eng.Run()
		if pod == nil {
			return true // legitimately unschedulable split (fragmentation)
		}
		for _, n := range tc.cluster.Nodes() {
			if n.FreeCPU() < 0 || n.FreeMemMB() < 0 {
				return false
			}
		}
		covered := 0
		for _, part := range pod.Parts {
			covered += len(part.specs)
		}
		return covered == len(specs)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
