package kube

import (
	"testing"

	"nestless/internal/brfusion"
	"nestless/internal/container"
	"nestless/internal/core"
	"nestless/internal/netsim"
	"nestless/internal/sim"
	"nestless/internal/vmm"
)

var hostSubnet = netsim.MustPrefix(netsim.IP(192, 168, 122, 0), 24)

type testCluster struct {
	eng     *sim.Engine
	net     *netsim.Net
	host    *vmm.Host
	cluster *Cluster
}

// newTestCluster builds one host with nVMs nodes (5 vCPUs / 4096 MB each,
// the paper's VM size), each running a container engine with both the
// bridge-nat and brfusion CNI plugins registered.
func newTestCluster(t *testing.T, nVMs int) *testCluster {
	if t != nil {
		t.Helper()
	}
	eng := sim.New(7)
	eng.MaxSteps = 50_000_000
	w := netsim.NewNet(eng)
	h := vmm.NewHost(w)
	h.AddBridge("virbr0", netsim.IP(192, 168, 122, 1), hostSubnet)
	ctrl := core.NewController(h)
	cl := NewCluster(ctrl)
	for i := 0; i < nVMs; i++ {
		name := "vm" + string(rune('1'+i))
		vm, _ := h.CreateVM(vmm.VMConfig{Name: name, VCPUs: 5, MemoryMB: 4096})
		vm.PlugBridgeNIC("virbr0", hostSubnet.Host(10+i), hostSubnet)
		e := container.NewEngine(container.Config{
			Node: name, Eng: eng, Net: w, NS: vm.NS, CPU: vm.CPU,
			EntityCPU: vm.EntityCPU,
			Uplink:    "eth0",
			Boot:      container.FastBootProfile(),
		})
		node := NewNode(vm, e)
		node.CNI.Register(e.DefaultProvisioner())
		node.CNI.Register(brfusion.New(ctrl, vm, "virbr0"))
		cl.AddNode(node)
	}
	return &testCluster{eng: eng, net: w, host: h, cluster: cl}
}

// deploy runs a deployment to completion and returns the pod.
func (tc *testCluster) deploy(t *testing.T, spec PodSpec) *Pod {
	t.Helper()
	var pod *Pod
	var derr error
	tc.cluster.Deploy(spec, func(p *Pod, err error) { pod, derr = p, err })
	tc.eng.Run()
	if derr != nil {
		t.Fatalf("deploy %s: %v", spec.Name, derr)
	}
	if pod == nil {
		t.Fatalf("deploy %s never completed", spec.Name)
	}
	return pod
}

func TestDeployNATPod(t *testing.T) {
	tc := newTestCluster(t, 1)
	pod := tc.deploy(t, PodSpec{
		Name: "web",
		Containers: []ContainerSpec{
			{Name: "srv", Image: "app", CPU: 1, MemMB: 512,
				Ports: []container.PortMap{{Proto: netsim.ProtoUDP, NodePort: 8080, CtrPort: 80}}},
		},
	})
	if pod.Split() {
		t.Fatal("single-node pod reported split")
	}
	part := pod.Parts[0]
	if part.LocalAddr != netsim.IP(127, 0, 0, 1) {
		t.Fatalf("LocalAddr = %v, want loopback", part.LocalAddr)
	}
	// Pod got a docker-subnet address behind the VM NAT.
	if !netsim.MustPrefix(netsim.IP(172, 17, 0, 0), 16).Contains(part.PodIP) {
		t.Fatalf("NAT pod IP = %v, want 172.17/16", part.PodIP)
	}
	// Reachable from the host through the published port on the VM.
	var got bool
	if _, err := part.Sandbox.NS.BindUDP(80, func(p *netsim.Packet) { got = true }); err != nil {
		t.Fatal(err)
	}
	s, _ := tc.host.NS.BindUDP(0, nil)
	s.SendTo(hostSubnet.Host(10), 8080, 10, nil)
	tc.eng.Run()
	if !got {
		t.Fatal("NAT pod unreachable via published port")
	}
}

func TestDeployBrFusionPod(t *testing.T) {
	tc := newTestCluster(t, 1)
	pod := tc.deploy(t, PodSpec{
		Name:    "web",
		Network: "brfusion",
		Containers: []ContainerSpec{
			{Name: "srv", Image: "app", CPU: 1, MemMB: 512},
		},
	})
	part := pod.Parts[0]
	// BrFusion pods live on the host bridge subnet — first-class citizens.
	if !hostSubnet.Contains(part.PodIP) {
		t.Fatalf("BrFusion pod IP = %v, want host subnet", part.PodIP)
	}
	// Directly reachable from the host: no VM DNAT involved.
	var got bool
	if _, err := part.Sandbox.NS.BindUDP(80, func(p *netsim.Packet) { got = true }); err != nil {
		t.Fatal(err)
	}
	s, _ := tc.host.NS.BindUDP(0, nil)
	s.SendTo(part.PodIP, 80, 10, nil)
	tc.eng.Run()
	if !got {
		t.Fatal("BrFusion pod unreachable at its first-class address")
	}
	// The VM's netfilter saw none of the pod's traffic.
	vm := tc.host.VM("vm1")
	if vm.NS.Filter.Translations != 0 {
		t.Error("BrFusion traffic went through in-VM NAT")
	}
}

func TestDeploySplitPodWithHostlo(t *testing.T) {
	tc := newTestCluster(t, 2)
	// Each VM has 5 cores; 8 cores cannot fit on one node.
	pod := tc.deploy(t, PodSpec{
		Name:       "big",
		AllowSplit: true,
		Containers: []ContainerSpec{
			{Name: "a", Image: "app", CPU: 4, MemMB: 1024},
			{Name: "b", Image: "app", CPU: 4, MemMB: 1024},
		},
	})
	if !pod.Split() {
		t.Fatal("oversized pod was not split")
	}
	if pod.HostloID == "" {
		t.Fatal("split pod has no hostlo")
	}
	if tc.host.Hostlo(pod.HostloID).Queues() != 2 {
		t.Fatalf("hostlo queues = %d, want 2", tc.host.Hostlo(pod.HostloID).Queues())
	}
	// Cross-VM pod-localhost works: part 0 talks to part 1 over hostlo.
	p0, p1 := pod.Parts[0], pod.Parts[1]
	if p0.LocalAddr == p1.LocalAddr {
		t.Fatal("parts share a localhost address")
	}
	var got int
	if _, err := p1.Sandbox.NS.BindUDP(9000, func(p *netsim.Packet) { got = p.PayloadLen }); err != nil {
		t.Fatal(err)
	}
	s, _ := p0.Sandbox.NS.BindUDP(0, nil)
	s.SendTo(p1.LocalAddr, 9000, 123, nil)
	tc.eng.Run()
	if got != 123 {
		t.Fatalf("cross-VM pod-localhost got %d, want 123", got)
	}
}

func TestSchedulerMostRequestedPacks(t *testing.T) {
	tc := newTestCluster(t, 2)
	small := func(name string) PodSpec {
		return PodSpec{Name: name, Containers: []ContainerSpec{{Name: "c", Image: "app", CPU: 1, MemMB: 256}}}
	}
	p1 := tc.deploy(t, small("p1"))
	p2 := tc.deploy(t, small("p2"))
	// Most-requested groups pods onto the same node.
	if p1.Parts[0].Node != p2.Parts[0].Node {
		t.Fatal("most-requested policy spread pods instead of packing")
	}
}

func TestSchedulerUnschedulable(t *testing.T) {
	tc := newTestCluster(t, 1)
	var derr error
	tc.cluster.Deploy(PodSpec{
		Name:       "huge",
		Containers: []ContainerSpec{{Name: "c", Image: "app", CPU: 99, MemMB: 99999}},
	}, func(_ *Pod, err error) { derr = err })
	tc.eng.Run()
	if _, ok := derr.(ErrUnschedulable); !ok {
		t.Fatalf("err = %v, want ErrUnschedulable", derr)
	}
}

func TestSchedulerSplitRespectsCapacity(t *testing.T) {
	tc := newTestCluster(t, 2)
	// 3 containers × 2 cores over 2×5-core nodes: the 6-core pod fits no
	// single node, so it must split 2/1 without overcommitting either.
	pod := tc.deploy(t, PodSpec{
		Name:       "wide",
		AllowSplit: true,
		Containers: []ContainerSpec{
			{Name: "a", Image: "app", CPU: 2, MemMB: 256},
			{Name: "b", Image: "app", CPU: 2, MemMB: 256},
			{Name: "c", Image: "app", CPU: 2, MemMB: 256},
		},
	})
	if len(pod.Parts) != 2 {
		t.Fatalf("parts = %d, want 2", len(pod.Parts))
	}
	for _, n := range tc.cluster.Nodes() {
		if n.FreeCPU() < 0 || n.FreeMemMB() < 0 {
			t.Fatalf("node %s overcommitted: cpu=%v mem=%v", n.Name, n.FreeCPU(), n.FreeMemMB())
		}
	}
	if pod.Part("a") == nil || pod.Part("b") == nil || pod.Part("c") == nil {
		t.Fatal("Part lookup lost a container")
	}
}

func TestDeleteReturnsResources(t *testing.T) {
	tc := newTestCluster(t, 1)
	n := tc.cluster.Nodes()[0]
	freeCPU, freeMem := n.FreeCPU(), n.FreeMemMB()
	tc.deploy(t, PodSpec{Name: "p", Containers: []ContainerSpec{{Name: "c", Image: "app", CPU: 2, MemMB: 512}}})
	if n.FreeCPU() != freeCPU-2 {
		t.Fatalf("FreeCPU = %v after deploy", n.FreeCPU())
	}
	if err := tc.cluster.Delete("p"); err != nil {
		t.Fatal(err)
	}
	tc.eng.Run()
	if n.FreeCPU() != freeCPU || n.FreeMemMB() != freeMem {
		t.Fatal("resources not returned after delete")
	}
	if tc.cluster.Pod("p") != nil {
		t.Fatal("pod still registered")
	}
	if err := tc.cluster.Delete("p"); err == nil {
		t.Fatal("double delete succeeded")
	}
}

func TestDeployValidation(t *testing.T) {
	tc := newTestCluster(t, 1)
	var derr error
	tc.cluster.Deploy(PodSpec{Name: "empty"}, func(_ *Pod, err error) { derr = err })
	tc.eng.Run()
	if derr == nil {
		t.Fatal("empty pod accepted")
	}
	tc.deploy(t, PodSpec{Name: "dup", Containers: []ContainerSpec{{Name: "c", Image: "app", CPU: 1, MemMB: 64}}})
	tc.cluster.Deploy(PodSpec{Name: "dup", Containers: []ContainerSpec{{Name: "c", Image: "app", CPU: 1, MemMB: 64}}},
		func(_ *Pod, err error) { derr = err })
	tc.eng.Run()
	if derr == nil {
		t.Fatal("duplicate pod accepted")
	}
	var badNet error
	tc.cluster.Deploy(PodSpec{Name: "badnet", Network: "nope", Containers: []ContainerSpec{{Name: "c", Image: "app", CPU: 1, MemMB: 64}}},
		func(_ *Pod, err error) { badNet = err })
	tc.eng.Run()
	if badNet == nil {
		t.Fatal("unknown network accepted")
	}
}

func TestPodSpecTotals(t *testing.T) {
	s := PodSpec{Containers: []ContainerSpec{{CPU: 1.5, MemMB: 100}, {CPU: 2.5, MemMB: 200}}}
	if s.TotalCPU() != 4 || s.TotalMemMB() != 300 {
		t.Fatalf("totals = %v/%v", s.TotalCPU(), s.TotalMemMB())
	}
}
