package snapshot

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"nestless/internal/cloud"
	"nestless/internal/cluster"
	"nestless/internal/faults"
	"nestless/internal/sim"
	"nestless/internal/trace"
)

// The what-if service: ROADMAP item 3's long-running branch-query
// server. One base world is simulated to a snapshot instant and frozen;
// every query restores an independent branch from the shared snapshot,
// applies its delta (extra pods, a policy switch, a node massacre),
// continues to the horizon, and reports the branch outcome next to the
// uninterrupted baseline. Branches share the snapshot copy-on-write —
// including the packing cache, whose warm entries from the base run
// keep paying off inside every branch — so serving a query costs the
// branch continuation, not a from-scratch simulation.

// BaseConfig parameterises the service's base world.
type BaseConfig struct {
	// Seed drives the workload generator and the cluster world.
	Seed int64
	// Users sizes the tenant population; every user's pods are merged
	// into one base world (trace pod IDs are unique across users).
	Users int
	// MeanArrivalGap and MeanLifetime are the churn knobs (defaults 2m
	// and 45m).
	MeanArrivalGap time.Duration
	MeanLifetime   time.Duration
	// Policy is the base placement policy.
	Policy cluster.Policy
	// Horizon ends every branch (default 8h); SnapAt is the snapshot
	// instant (default Horizon/2).
	Horizon time.Duration
	SnapAt  time.Duration
	// BootDelay is the VM provisioning latency (default 45s).
	BootDelay time.Duration
	// FaultSpec arms the base world's fault injector ("" = off). When
	// the cloud configuration runs spot capacity and the spec says
	// nothing about spot/ points, cloud.DefaultRevocationSpec is merged
	// in after it.
	FaultSpec string
	// PackCacheSize bounds the shared packing cache (0 = default).
	PackCacheSize int
	// Cloud is the resolved machine-subsystem configuration (nil = the
	// default: on-demand aws:m5 in one zone, reconciler autoscaler).
	Cloud *cloud.Resolved
}

func (bc BaseConfig) withDefaults() BaseConfig {
	if bc.Users <= 0 {
		bc.Users = 40
	}
	if bc.MeanArrivalGap <= 0 {
		bc.MeanArrivalGap = 2 * time.Minute
	}
	if bc.MeanLifetime <= 0 {
		bc.MeanLifetime = 45 * time.Minute
	}
	if bc.Horizon <= 0 {
		bc.Horizon = 8 * time.Hour
	}
	if bc.SnapAt <= 0 || bc.SnapAt > bc.Horizon {
		bc.SnapAt = bc.Horizon / 2
	}
	if bc.BootDelay < 0 {
		bc.BootDelay = 45 * time.Second
	}
	if bc.Cloud == nil {
		cl, err := cloud.Resolve(cloud.Options{})
		if err != nil {
			// The default spec always resolves; a failure means the
			// registry itself is broken.
			panic(err)
		}
		bc.Cloud = cl
	}
	return bc
}

// Query is one what-if request.
type Query struct {
	// Kind selects the branch delta:
	//   "baseline"      — continue the snapshot unchanged;
	//   "add-pods"      — adopt Pods extra pods at the snapshot instant;
	//   "switch-policy" — continue under Policy;
	//   "kill-nodes"    — kill Nodes (or the first KillCount live nodes);
	//   "kill-zone"     — zone-loss drill: kill every live node in Zone;
	//   "revoke-spot"   — revoke the first RevokeCount live spot nodes.
	Kind string `json:"kind"`

	// add-pods: how many, and the seed their sizes/lifetimes derive
	// from (same seed, same pods — queries are reproducible).
	Pods    int   `json:"pods,omitempty"`
	PodSeed int64 `json:"pod_seed,omitempty"`

	// switch-policy: "kubernetes" or "hostlo".
	Policy string `json:"policy,omitempty"`

	// kill-nodes: explicit node names, or the first KillCount live
	// nodes (creation order) when Nodes is empty.
	Nodes     []string `json:"nodes,omitempty"`
	KillCount int      `json:"kill_count,omitempty"`

	// kill-zone: the configured zone name to drill (e.g. "us-east-1a").
	Zone string `json:"zone,omitempty"`

	// revoke-spot: how many live spot nodes to revoke (creation order;
	// requires a base world running spot capacity).
	RevokeCount int `json:"revoke_count,omitempty"`
}

// Reply is a branch outcome. Identical queries produce identical
// replies, wall-clock fields aside: the branch is a deterministic
// continuation of the shared snapshot.
type Reply struct {
	Kind    string        `json:"kind"`
	SnapAt  time.Duration `json:"snap_at"`
	Horizon time.Duration `json:"horizon"`

	// Digest fingerprints the branch's final world state; the baseline
	// branch reproduces the uninterrupted base run's digest exactly.
	Digest string `json:"digest"`

	Arrived      int     `json:"arrived"`
	Adopted      int     `json:"adopted,omitempty"`
	Departed     int     `json:"departed"`
	Running      int     `json:"running"`
	StillPending int     `json:"still_pending"`
	Failed       int     `json:"failed"`
	Kills        int     `json:"kills,omitempty"`
	Displaced    int     `json:"displaced,omitempty"`
	PeakNodes    int     `json:"peak_nodes"`
	FinalNodes   int     `json:"final_nodes"`
	CostDollars  float64 `json:"cost_dollars"`

	// Cloud-model outcomes: the spot/on-demand halves of CostDollars's
	// accrual, revocation and drill counts, and the per-zone live-node
	// spread at the horizon (omitted for single-zone worlds).
	CostSpotDollars     float64 `json:"cost_spot_dollars,omitempty"`
	CostOnDemandDollars float64 `json:"cost_on_demand_dollars,omitempty"`
	SpotRevocations     int     `json:"spot_revocations,omitempty"`
	ZoneKills           int     `json:"zone_kills,omitempty"`
	ZoneSpread          []int   `json:"zone_spread,omitempty"`

	// WarmCacheHits counts packing-cache hits scored inside this branch
	// — the copy-on-write payoff of sharing the base run's warm cache.
	WarmCacheHits   int `json:"warm_cache_hits"`
	WarmCacheMisses int `json:"warm_cache_misses"`

	// Leaks lists conservation-audit violations (always empty unless
	// the engine itself is broken; surfaced so a violation cannot hide).
	Leaks []string `json:"leaks,omitempty"`

	ElapsedMS float64 `json:"elapsed_ms"`
}

// Stats is the service counter snapshot.
type Stats struct {
	BaseUsers   int               `json:"base_users"`
	BasePods    int               `json:"base_pods"`
	Policy      string            `json:"policy"`
	SnapAt      time.Duration     `json:"snap_at"`
	Horizon     time.Duration     `json:"horizon"`
	SnapshotB   int               `json:"snapshot_bytes"`
	BaseDigest  string            `json:"base_digest"`
	Queries     uint64            `json:"queries"`
	Errors      uint64            `json:"errors"`
	PerKind     map[string]uint64 `json:"per_kind"`
	WarmHits    uint64            `json:"warm_cache_hits"`
	WarmMisses  uint64            `json:"warm_cache_misses"`
	WarmHitRate float64           `json:"warm_cache_hit_rate"`
}

// Service owns one frozen base snapshot and serves branch queries
// against it. All methods are safe for concurrent use: the snapshot is
// never mutated after construction, and every query restores its own
// world.
type Service struct {
	cfg     BaseConfig
	snap    *cluster.Snapshot
	encoded int // Encode(snap) size, a codec self-check at construction

	baseRes    cluster.Result // the uninterrupted run, snapshot → horizon
	baseDigest uint64
	basePods   int

	mu         sync.Mutex
	queries    uint64
	errors     uint64
	perKind    map[string]uint64
	warmHits   uint64
	warmMisses uint64
}

// NewService simulates the base world to the snapshot instant, freezes
// it, and continues the original world to the horizon for the
// uninterrupted baseline every branch is compared against.
func NewService(bc BaseConfig) (*Service, error) {
	bc = bc.withDefaults()
	var sched *faults.Schedule
	if bc.FaultSpec != "" {
		var err error
		sched, err = faults.ParseSpec(bc.FaultSpec)
		if err != nil {
			return nil, fmt.Errorf("whatif: fault spec: %w", err)
		}
	}
	if bc.Cloud.SpotFrac > 0 && !sched.HasPointPrefix("spot/") {
		def, err := faults.ParseSpec(cloud.DefaultRevocationSpec)
		if err != nil {
			return nil, fmt.Errorf("whatif: default revocation spec: %w", err)
		}
		sched = faults.Merge(sched, def)
	}
	users := trace.Generate(trace.GenConfig{
		Seed:              bc.Seed,
		Users:             bc.Users,
		MeanPodsPerUser:   6,
		HeavyUserFraction: 0.2,
		MeanArrivalGap:    bc.MeanArrivalGap,
		MeanLifetime:      bc.MeanLifetime,
	})
	var pods []trace.Pod
	for _, u := range users {
		pods = append(pods, u.Pods...)
	}
	mode := cluster.Reconciler
	if bc.Cloud.Imperative {
		mode = cluster.Imperative
	}
	c := cluster.New(cluster.Config{
		Seed:          bc.Seed,
		Pods:          pods,
		Catalog:       bc.Cloud.Catalog.Types,
		Policy:        bc.Policy,
		Horizon:       bc.Horizon,
		BootDelay:     bc.BootDelay,
		Faults:        sched,
		PackCacheSize: bc.PackCacheSize,
		Zones:         bc.Cloud.Zones,
		ZoneNames:     bc.Cloud.ZoneNames,
		SpotFrac:      bc.Cloud.SpotFrac,
		SpotDiscount:  bc.Cloud.SpotDiscount,
		Autoscaler:    mode,
	})
	c.Arm()
	c.Advance(sim.Time(bc.SnapAt))
	snap, err := c.Capture()
	if err != nil {
		return nil, fmt.Errorf("whatif: capture base world: %w", err)
	}
	enc, err := Encode(snap)
	if err != nil {
		return nil, fmt.Errorf("whatif: encode base snapshot: %w", err)
	}
	// The parent world keeps going: its uninterrupted finish is the
	// baseline digest a "baseline" branch must reproduce byte for byte.
	c.Advance(sim.Time(bc.Horizon))
	baseRes := c.Finish()
	if leaks := c.Leaks(); len(leaks) > 0 {
		return nil, fmt.Errorf("whatif: base world leaks: %s", leaks[0])
	}
	return &Service{
		cfg:        bc,
		snap:       snap,
		encoded:    len(enc),
		baseRes:    baseRes,
		baseDigest: c.Digest(),
		basePods:   len(pods),
		perKind:    map[string]uint64{},
	}, nil
}

// Snapshot exposes the frozen base snapshot (read-only by contract).
func (s *Service) Snapshot() *cluster.Snapshot { return s.snap }

// BaseResult returns the uninterrupted base run's outcome.
func (s *Service) BaseResult() cluster.Result { return s.baseRes }

// BaseDigest returns the uninterrupted base run's final digest.
func (s *Service) BaseDigest() uint64 { return s.baseDigest }

// Run answers one what-if query: restore a branch, apply the delta,
// continue to the horizon, audit, report.
func (s *Service) Run(q Query) (*Reply, error) {
	start := time.Now()
	opts := cluster.RestoreOpts{}
	switch q.Kind {
	case "baseline", "add-pods", "kill-nodes", "kill-zone", "revoke-spot":
	case "switch-policy":
		var p cluster.Policy
		switch q.Policy {
		case "kubernetes":
			p = cluster.Kubernetes
		case "hostlo":
			p = cluster.Hostlo
		default:
			return nil, fmt.Errorf("whatif: unknown policy %q", q.Policy)
		}
		opts.Policy = &p
	default:
		return nil, fmt.Errorf("whatif: unknown query kind %q", q.Kind)
	}
	c, err := cluster.Restore(s.snap, opts)
	if err != nil {
		return nil, fmt.Errorf("whatif: restore branch: %w", err)
	}
	switch q.Kind {
	case "add-pods":
		if q.Pods <= 0 || q.Pods > 1<<20 {
			return nil, fmt.Errorf("whatif: add-pods wants 1..%d pods, got %d", 1<<20, q.Pods)
		}
		if err := c.AdoptPods(synthPods(q.Pods, q.PodSeed, s.cfg)); err != nil {
			return nil, err
		}
	case "kill-nodes":
		names := q.Nodes
		if len(names) == 0 {
			live := c.LiveNodeNames()
			if q.KillCount <= 0 || q.KillCount > len(live) {
				return nil, fmt.Errorf("whatif: kill-nodes wants 1..%d nodes, got %d", len(live), q.KillCount)
			}
			names = live[:q.KillCount]
		}
		if err := c.KillNodesNow(names); err != nil {
			return nil, err
		}
	case "kill-zone":
		if q.Zone == "" {
			return nil, fmt.Errorf("whatif: kill-zone wants a zone name")
		}
		if _, err := c.KillZoneNow(q.Zone); err != nil {
			return nil, err
		}
	case "revoke-spot":
		n, err := c.RevokeSpotNow(q.RevokeCount)
		if err != nil {
			return nil, err
		}
		if n < q.RevokeCount {
			return nil, fmt.Errorf("whatif: revoke-spot wanted %d spot nodes, only %d live (is the base world running -spot-frac?)", q.RevokeCount, n)
		}
	}
	c.Advance(sim.Time(s.cfg.Horizon))
	res := c.Finish()
	leaks := c.Leaks()
	rep := &Reply{
		Kind:                q.Kind,
		SnapAt:              s.cfg.SnapAt,
		Horizon:             s.cfg.Horizon,
		Digest:              fmt.Sprintf("%016x", c.Digest()),
		Arrived:             res.Arrived,
		Adopted:             res.Adopted,
		Departed:            res.Departed,
		Running:             res.Running,
		StillPending:        res.StillPending,
		Failed:              res.Failed,
		Kills:               res.Kills,
		Displaced:           res.Displaced,
		PeakNodes:           res.PeakNodes,
		FinalNodes:          res.FinalNodes,
		CostDollars:         res.CostDollars,
		CostSpotDollars:     res.CostSpotDollars,
		CostOnDemandDollars: res.CostOnDemandDollars,
		SpotRevocations:     res.SpotRevocations,
		ZoneKills:           res.ZoneKills,
		ZoneSpread:          res.ZoneSpread,
		WarmCacheHits:       res.OptimizerCacheHits - s.snap.Res.OptimizerCacheHits,
		WarmCacheMisses:     res.OptimizerCacheMisses - s.snap.Res.OptimizerCacheMisses,
		Leaks:               leaks,
		ElapsedMS:           float64(time.Since(start).Microseconds()) / 1e3,
	}
	s.mu.Lock()
	s.queries++
	s.perKind[q.Kind]++
	s.warmHits += uint64(rep.WarmCacheHits)
	s.warmMisses += uint64(rep.WarmCacheMisses)
	s.mu.Unlock()
	return rep, nil
}

// synthPods derives q.Pods single-container pods from seed — uniform
// sizes within the mid range of the catalog's smallest machine, mean-
// lifetime exponential churn, arrival at the snapshot instant. Pure
// function of (n, seed, cfg): re-asking the same question adopts the
// same pods.
func synthPods(n int, seed int64, bc BaseConfig) []trace.Pod {
	rng := sim.NewRand(seed)
	pods := make([]trace.Pod, n)
	for i := range pods {
		pods[i] = trace.Pod{
			ID: fmt.Sprintf("whatif-%d-%d", seed, i),
			Containers: []trace.Container{{
				CPU: rng.Uniform(0.02, 0.25),
				Mem: rng.Uniform(0.02, 0.25),
			}},
			Arrival:  bc.SnapAt,
			Lifetime: time.Duration(rng.Exp(float64(bc.MeanLifetime))),
		}
	}
	return pods
}

// Stats reports the service counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		BaseUsers:  s.cfg.Users,
		BasePods:   s.basePods,
		Policy:     s.cfg.Policy.String(),
		SnapAt:     s.cfg.SnapAt,
		Horizon:    s.cfg.Horizon,
		SnapshotB:  s.encoded,
		BaseDigest: fmt.Sprintf("%016x", s.baseDigest),
		Queries:    s.queries,
		Errors:     s.errors,
		PerKind:    map[string]uint64{},
		WarmHits:   s.warmHits,
		WarmMisses: s.warmMisses,
	}
	for k, v := range s.perKind {
		st.PerKind[k] = v
	}
	if t := s.warmHits + s.warmMisses; t > 0 {
		st.WarmHitRate = float64(s.warmHits) / float64(t)
	}
	return st
}

// Handler returns the HTTP face: POST /whatif answers queries, GET
// /stats reports counters, GET /base reports the uninterrupted run.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/whatif", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpErr(w, http.StatusMethodNotAllowed, "POST a query")
			return
		}
		var q Query
		if err := json.NewDecoder(r.Body).Decode(&q); err != nil {
			s.countErr()
			httpErr(w, http.StatusBadRequest, err.Error())
			return
		}
		rep, err := s.Run(q)
		if err != nil {
			s.countErr()
			httpErr(w, http.StatusBadRequest, err.Error())
			return
		}
		writeJSON(w, rep)
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.Stats())
	})
	mux.HandleFunc("/base", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, struct {
			Digest string         `json:"digest"`
			Result cluster.Result `json:"result"`
		}{fmt.Sprintf("%016x", s.baseDigest), s.baseRes})
	})
	return mux
}

func (s *Service) countErr() {
	s.mu.Lock()
	s.errors++
	s.mu.Unlock()
}

func httpErr(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// KindNames lists the query kinds the service answers, for usage text.
func KindNames() []string {
	return []string{"add-pods", "baseline", "kill-nodes", "kill-zone", "revoke-spot", "switch-policy"}
}
