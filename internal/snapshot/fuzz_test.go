package snapshot

import (
	"bytes"
	"testing"
	"time"

	"nestless/internal/cluster"
	"nestless/internal/sim"
)

// fuzzSeedSnapshot builds a small real captured world for the seed
// corpus: churn, Hostlo (so the packing cache and dirty set are
// populated), faults (so the injector state rides along).
func fuzzSeedSnapshot(tb testing.TB) []byte {
	cfg := cluster.Config{
		Seed:      3,
		Pods:      churnPods(3, 4),
		Policy:    cluster.Hostlo,
		Horizon:   time.Hour,
		BootDelay: 0,
		Faults:    mustSpec(tb, "node/*:crash:p=0.05;node/provision:fail:p=0.1"),
	}
	c := cluster.New(cfg)
	c.Arm()
	c.Advance(sim.Time(30 * time.Minute))
	snap, err := c.Capture()
	if err != nil {
		tb.Fatalf("Capture: %v", err)
	}
	enc, err := Encode(snap)
	if err != nil {
		tb.Fatalf("Encode: %v", err)
	}
	return enc
}

// FuzzSnapshotRoundTrip feeds the decoder arbitrary bytes. The contract
// under fuzzing: Decode never panics and never over-allocates;
// anything it accepts re-encodes canonically (Encode∘Decode is a
// fixpoint after one round); and cluster.Restore on an accepted
// snapshot either errors cleanly or builds a world — hostile bytes can
// produce a garbage world, but never a crash.
func FuzzSnapshotRoundTrip(f *testing.F) {
	valid := fuzzSeedSnapshot(f)
	f.Add(valid)
	f.Add(valid[:len(valid)/2]) // truncated
	f.Add(valid[:5])            // magic + version only
	f.Add([]byte{})
	f.Add([]byte("NLW1"))
	f.Add([]byte("NLW9\x01"))
	skew := append([]byte(nil), valid...)
	skew[4] = 99 // version byte
	f.Add(skew)
	corrupt := append([]byte(nil), valid...)
	corrupt[len(corrupt)/3] ^= 0x40
	f.Add(corrupt)
	f.Add(append(append([]byte(nil), valid...), 0xff)) // trailing byte

	f.Fuzz(func(t *testing.T, b []byte) {
		s, err := Decode(b)
		if err != nil {
			return // rejected cleanly — the common case
		}
		enc1, err := Encode(s)
		if err != nil {
			t.Fatalf("Encode rejected a snapshot Decode accepted: %v", err)
		}
		s2, err := Decode(enc1)
		if err != nil {
			t.Fatalf("Decode rejected its own re-encoding: %v", err)
		}
		enc2, err := Encode(s2)
		if err != nil {
			t.Fatalf("re-Encode: %v", err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("Encode∘Decode is not a fixpoint (%d vs %d bytes)", len(enc1), len(enc2))
		}
		// Restore must not panic on whatever survived decoding. (The
		// world is not advanced: a hostile snapshot may carry absurd
		// step budgets; Restore itself must still be total.) Large RNG
		// positions are skipped for throughput — restoring one replays
		// the stream, which is legitimate O(draws) work, not a hang.
		const maxFuzzDraws = 1 << 20
		if s.Eng.Rand.Draws > maxFuzzDraws || (s.Inj != nil && s.Inj.Rand.Draws > maxFuzzDraws) {
			return
		}
		if c, err := cluster.Restore(s, cluster.RestoreOpts{}); err == nil {
			_ = c.Now()
		}
	})
}

// TestDecodeRejectsGarbage pins the codec's failure modes outside the
// fuzzer, so a fuzz-shy environment still checks them.
func TestDecodeRejectsGarbage(t *testing.T) {
	valid := fuzzSeedSnapshot(t)
	cases := map[string][]byte{
		"empty":      {},
		"bad magic":  []byte("XXXX\x01rest"),
		"version 99": append([]byte("NLW1"), 99),
		"truncated":  valid[:len(valid)-7],
		"trailing":   append(append([]byte(nil), valid...), 0),
	}
	for name, b := range cases {
		if _, err := Decode(b); err == nil {
			t.Errorf("%s: Decode accepted", name)
		}
	}
	if _, err := Decode(valid); err != nil {
		t.Errorf("valid snapshot rejected: %v", err)
	}
}
