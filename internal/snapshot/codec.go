// Package snapshot serializes cluster world snapshots and serves what-if
// branch queries against a resident base world.
//
// The codec is a versioned binary format ("NLW1"): varints for the
// integers, IEEE-754 bit patterns for the floats (exactness is the whole
// point — a snapshot round-trips the float accumulator states bit for
// bit), length-prefixed strings, and map contents in sorted key order so
// Encode is a pure function of the world state. Decode is hostile-input
// safe: every count is bounds-checked against the remaining input, so a
// truncated, corrupted or version-skewed snapshot returns an error —
// never a panic, never an over-allocation.
package snapshot

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"time"

	"nestless/internal/cloudsim"
	"nestless/internal/cluster"
	"nestless/internal/faults"
	"nestless/internal/sim"
	"nestless/internal/trace"
)

// magic identifies a nestless world snapshot stream.
const magic = "NLW1"

// version is the current format version. Decode rejects anything else:
// the format carries simulation state whose meaning is tied to this
// exact code, so there is no cross-version compatibility to pretend to.
// v2 added the cloud model: zone/spot node identity, the machine
// subsystem's Config knobs, the fallback credit, and the Result's
// reconcile/revocation counters and cost split.
// v3 added the trajectory downsampler: Config.SampleCap, the per-Sample
// window aggregates (Points and the Sum* fields), and the open partial
// window (Snapshot.TrajWin).
const version = 3

// maxRandDraws bounds the RNG stream positions the codec will accept.
// Restoring a stream position replays that many draws, so an unbounded
// count would let a hostile snapshot buy an arbitrarily long burn loop.
// Real worlds sit far below this — one draw per fault probability roll,
// ~3M for a 100k-pod chaos run — and a world past the bound still
// snapshots in memory (Capture/Restore are uncapped); only the byte
// codec refuses it.
const maxRandDraws = 1 << 24

// Encode serializes a snapshot. The format is private to Decode; treat
// the bytes as opaque.
func Encode(s *cluster.Snapshot) ([]byte, error) {
	if s == nil {
		return nil, fmt.Errorf("snapshot: encode nil snapshot")
	}
	if s.Eng.Rand.Draws > maxRandDraws {
		return nil, fmt.Errorf("snapshot: engine RNG position %d exceeds the codec bound %d", s.Eng.Rand.Draws, maxRandDraws)
	}
	if s.Inj != nil && s.Inj.Rand.Draws > maxRandDraws {
		return nil, fmt.Errorf("snapshot: injector RNG position %d exceeds the codec bound %d", s.Inj.Rand.Draws, maxRandDraws)
	}
	e := &enc{}
	e.raw([]byte(magic))
	e.uvarint(version)

	// Config.
	e.varint(s.Cfg.Seed)
	e.uvarint(uint64(s.Cfg.Policy))
	e.dur(s.Cfg.Horizon)
	e.dur(s.Cfg.BootDelay)
	e.dur(s.Cfg.ScaleEvery)
	e.dur(s.Cfg.IdleGrace)
	e.dur(s.Cfg.ProvisionRetryEvery)
	e.dur(s.Cfg.SampleEvery)
	e.uvarint(s.Cfg.MaxSteps)
	e.bool(s.Cfg.Reference)
	e.bool(s.Cfg.FullRepack)
	e.f64(s.Cfg.RepackDirtyFrac)
	e.varint(int64(s.Cfg.RepackWorkers))
	e.varint(int64(s.Cfg.PackCacheSize))
	e.varint(int64(s.Cfg.SampleCap))
	e.varint(int64(s.Cfg.Zones))
	e.uvarint(uint64(len(s.Cfg.ZoneNames)))
	for _, z := range s.Cfg.ZoneNames {
		e.str(z)
	}
	e.f64(s.Cfg.SpotFrac)
	e.uvarint(uint64(len(s.Cfg.SpotDiscount)))
	for _, f := range s.Cfg.SpotDiscount {
		e.f64(f)
	}
	e.uvarint(uint64(s.Cfg.Autoscaler))
	e.uvarint(uint64(len(s.Cfg.Catalog)))
	for _, t := range s.Cfg.Catalog {
		e.str(t.Name)
		e.varint(int64(t.VCPU))
		e.varint(int64(t.MemGB))
		e.f64(t.RelCPU)
		e.f64(t.RelMem)
		e.f64(t.PricePerH)
	}
	e.str(s.FaultsSpec)

	// Engine.
	e.varint(int64(s.Eng.Now))
	e.uvarint(s.Eng.Seq)
	e.uvarint(s.Eng.Steps)
	e.varint(s.Eng.Rand.Seed)
	e.uvarint(s.Eng.Rand.Draws)

	// Pods.
	e.uvarint(uint64(len(s.Pods)))
	for i := range s.Pods {
		p := &s.Pods[i]
		e.str(p.Pod.ID)
		e.uvarint(uint64(len(p.Pod.Containers)))
		for _, ct := range p.Pod.Containers {
			e.f64(ct.CPU)
			e.f64(ct.Mem)
		}
		e.dur(p.Pod.Arrival)
		e.dur(p.Pod.Lifetime)
		e.str(p.User)
		e.varint(int64(p.State))
		e.varint(int64(p.ArrivedAt))
		e.varint(int64(p.WaitSince))
		e.varint(int64(p.PlacedAt))
		e.dur(p.Remaining)
		e.varint(int64(p.DepartGen))
		e.bool(p.ScheduledOnce)
		e.bool(p.Displaced)
		e.uvarint(uint64(len(p.OnNodes)))
		for _, nid := range p.OnNodes {
			e.varint(int64(nid))
		}
	}

	// Nodes and fleet lists.
	e.uvarint(uint64(len(s.Nodes)))
	for i := range s.Nodes {
		n := &s.Nodes[i]
		e.varint(int64(n.Typ))
		e.varint(int64(n.Zone))
		e.bool(n.Spot)
		e.bool(n.Live)
		e.varint(int64(n.BornAt))
		e.varint(int64(n.IdleSince))
		e.placedItems(n.Items)
	}
	e.i32s(s.LiveList)
	e.varint(int64(s.DeadLive))
	e.i32s(s.DirtyList)

	// Pending queue.
	e.i32s(s.RefQueue)
	e.uvarint(uint64(len(s.PQ)))
	for _, q := range s.PQ {
		e.f64(q.Key)
		e.uvarint(q.Seq)
		e.varint(int64(q.Idx))
	}
	e.uvarint(s.EnqSeq)

	// Scheduler scalars.
	e.varint(int64(s.BlockedPod))
	e.uvarint(s.BlockedVer)
	e.uvarint(s.IdxVer)
	e.varint(int64(s.Inflight))
	e.varint(int64(s.OdFallback))
	e.bool(s.Dirty)
	e.bool(s.Started)
	e.bool(s.Finalized)

	// Pending events.
	e.uvarint(uint64(len(s.Events)))
	for _, ev := range s.Events {
		e.varint(int64(ev.At))
		e.uvarint(ev.Seq)
		e.uvarint(uint64(ev.Kind))
		e.varint(ev.A)
		e.varint(ev.B)
	}

	// Result.
	r := &s.Res
	e.uvarint(uint64(r.Policy))
	for _, v := range []int{
		r.Arrived, r.BeyondHorizon, r.Scheduled, r.Departed, r.Running,
		r.StillPending, r.Failed, r.Displaced, r.Reschedules, r.Kills,
		r.TransferredIn, r.TransferredOut, r.Adopted,
		r.ScaleUps, r.ScaleDowns, r.ProvisionRetries,
		r.OptimizerRuns, r.OptimizerFull, r.OptimizerMoves, r.OptimizerGroups,
		r.OptimizerCacheHits, r.OptimizerCacheMisses,
		r.PeakNodes, r.FinalNodes,
		r.ReconcileRounds, r.ReconcileActions, r.SpotProvisions,
		r.SpotRevocations, r.OnDemandFallbacks, r.ZoneKills,
	} {
		e.varint(int64(v))
	}
	e.uvarint(uint64(len(r.FleetTypes)))
	for _, t := range r.FleetTypes {
		e.varint(int64(t))
	}
	e.uvarint(uint64(len(r.ZoneSpread)))
	for _, z := range r.ZoneSpread {
		e.varint(int64(z))
	}
	e.f64(r.CostDollars)
	e.f64(r.FinalCostPerH)
	e.f64(r.CostSpotDollars)
	e.f64(r.CostOnDemandDollars)
	e.dur(r.TTSSum)
	e.dur(r.TTSMean)
	e.dur(r.TTSP95)
	e.dur(r.TTSMax)
	e.uvarint(uint64(len(r.Samples)))
	for _, sm := range r.Samples {
		e.sample(sm)
	}
	e.sample(s.TrajWin)

	// Time-to-schedule series.
	e.uvarint(uint64(len(s.TTS.Samples)))
	for _, v := range s.TTS.Samples {
		e.f64(v)
	}
	e.bool(s.TTS.Sorted)
	e.f64(s.TTS.Sum)
	e.f64(s.TTS.SumSq)

	// Fault injector.
	e.bool(s.Inj != nil)
	if s.Inj != nil {
		e.varint(s.Inj.Rand.Seed)
		e.uvarint(s.Inj.Rand.Draws)
		e.uvarint(uint64(len(s.Inj.Rules)))
		for _, rc := range s.Inj.Rules {
			e.uvarint(rc.Hits)
			e.uvarint(rc.Fires)
		}
		keys := make([]string, 0, len(s.Inj.Counts))
		for k := range s.Inj.Counts {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		e.uvarint(uint64(len(keys)))
		for _, k := range keys {
			e.str(k)
			e.uvarint(s.Inj.Counts[k])
		}
		e.uvarint(s.Inj.Total)
	}

	// Packing cache.
	e.bool(s.Pack != nil)
	if s.Pack != nil {
		e.varint(int64(s.Pack.Cap))
		e.uvarint(uint64(len(s.Pack.Entries)))
		for i := range s.Pack.Entries {
			e.placedVMs(s.Pack.Entries[i].Input)
			e.placedVMs(s.Pack.Entries[i].Output)
		}
		e.uvarint(s.Pack.Hits)
		e.uvarint(s.Pack.Misses)
		e.uvarint(s.Pack.Evictions)
	}
	return e.buf, nil
}

// Decode parses an Encode stream back into a snapshot. Any deviation —
// wrong magic, unknown version, truncation, counts past the input,
// trailing bytes — is an error; Decode never panics on hostile input.
// The structural validity of the world itself (index ranges, event
// kinds, conservation of the inflight count) is cluster.Restore's check:
// Decode guarantees only a well-formed Snapshot value.
func Decode(b []byte) (*cluster.Snapshot, error) {
	d := &dec{b: b}
	if string(d.raw(4)) != magic {
		return nil, fmt.Errorf("snapshot: bad magic (not a nestless snapshot)")
	}
	if v := d.uvarint(); d.err == nil && v != version {
		return nil, fmt.Errorf("snapshot: format version %d, this build reads %d", v, version)
	}
	s := &cluster.Snapshot{}

	// Config.
	s.Cfg.Seed = d.varint()
	s.Cfg.Policy = cluster.Policy(d.uvarint())
	if d.err == nil && s.Cfg.Policy != cluster.Kubernetes && s.Cfg.Policy != cluster.Hostlo {
		return nil, fmt.Errorf("snapshot: unknown policy %d", s.Cfg.Policy)
	}
	s.Cfg.Horizon = d.dur()
	s.Cfg.BootDelay = d.dur()
	s.Cfg.ScaleEvery = d.dur()
	s.Cfg.IdleGrace = d.dur()
	s.Cfg.ProvisionRetryEvery = d.dur()
	s.Cfg.SampleEvery = d.dur()
	s.Cfg.MaxSteps = d.uvarint()
	s.Cfg.Reference = d.bool()
	s.Cfg.FullRepack = d.bool()
	s.Cfg.RepackDirtyFrac = d.f64()
	s.Cfg.RepackWorkers = int(d.varint())
	s.Cfg.PackCacheSize = int(d.varint())
	s.Cfg.SampleCap = int(d.varint())
	s.Cfg.Zones = int(d.varint())
	for i, n := 0, d.count(1); i < n; i++ {
		s.Cfg.ZoneNames = append(s.Cfg.ZoneNames, d.str())
	}
	s.Cfg.SpotFrac = d.f64()
	for i, n := 0, d.count(8); i < n; i++ {
		s.Cfg.SpotDiscount = append(s.Cfg.SpotDiscount, d.f64())
	}
	s.Cfg.Autoscaler = cluster.AutoscalerMode(d.uvarint())
	if d.err == nil && s.Cfg.Autoscaler != cluster.Reconciler && s.Cfg.Autoscaler != cluster.Imperative {
		return nil, fmt.Errorf("snapshot: unknown autoscaler mode %d", s.Cfg.Autoscaler)
	}
	for i, n := 0, d.count(1); i < n; i++ {
		t := cloudsim.VMType{
			Name:   d.str(),
			VCPU:   int(d.varint()),
			MemGB:  int(d.varint()),
			RelCPU: d.f64(),
			RelMem: d.f64(),
		}
		t.PricePerH = d.f64()
		s.Cfg.Catalog = append(s.Cfg.Catalog, t)
	}
	s.FaultsSpec = d.str()
	if d.err == nil && s.FaultsSpec != "" {
		sched, err := faults.ParseSpec(s.FaultsSpec)
		if err != nil {
			return nil, fmt.Errorf("snapshot: embedded fault spec: %w", err)
		}
		s.Cfg.Faults = sched
	}

	// Engine.
	s.Eng.Now = sim.Time(d.varint())
	s.Eng.Seq = d.uvarint()
	s.Eng.Steps = d.uvarint()
	s.Eng.Rand.Seed = d.varint()
	s.Eng.Rand.Draws = d.uvarint()
	if d.err == nil && s.Eng.Rand.Draws > maxRandDraws {
		return nil, fmt.Errorf("snapshot: engine RNG position %d exceeds the codec bound %d", s.Eng.Rand.Draws, maxRandDraws)
	}

	// Pods.
	for i, n := 0, d.count(8); i < n; i++ {
		p := cluster.PodSnap{}
		p.Pod.ID = d.str()
		for j, m := 0, d.count(2); j < m; j++ {
			p.Pod.Containers = append(p.Pod.Containers, trace.Container{CPU: d.f64(), Mem: d.f64()})
		}
		p.Pod.Arrival = d.dur()
		p.Pod.Lifetime = d.dur()
		p.User = d.str()
		p.State = int8(d.varint())
		p.ArrivedAt = sim.Time(d.varint())
		p.WaitSince = sim.Time(d.varint())
		p.PlacedAt = sim.Time(d.varint())
		p.Remaining = d.dur()
		p.DepartGen = int(d.varint())
		p.ScheduledOnce = d.bool()
		p.Displaced = d.bool()
		for j, m := 0, d.count(1); j < m; j++ {
			p.OnNodes = append(p.OnNodes, int32(d.varint()))
		}
		if d.err != nil {
			return nil, d.err
		}
		s.Pods = append(s.Pods, p)
	}

	// Nodes and fleet lists.
	for i, n := 0, d.count(4); i < n; i++ {
		ns := cluster.NodeSnap{
			Typ:       int32(d.varint()),
			Zone:      int32(d.varint()),
			Spot:      d.bool(),
			Live:      d.bool(),
			BornAt:    sim.Time(d.varint()),
			IdleSince: sim.Time(d.varint()),
			Items:     d.placedItems(),
		}
		if d.err != nil {
			return nil, d.err
		}
		s.Nodes = append(s.Nodes, ns)
	}
	s.LiveList = d.i32s()
	s.DeadLive = int(d.varint())
	s.DirtyList = d.i32s()

	// Pending queue.
	s.RefQueue = d.i32s()
	for i, n := 0, d.count(3); i < n; i++ {
		s.PQ = append(s.PQ, cluster.QueueSnap{Key: d.f64(), Seq: d.uvarint(), Idx: int32(d.varint())})
	}
	s.EnqSeq = d.uvarint()

	// Scheduler scalars.
	s.BlockedPod = int(d.varint())
	s.BlockedVer = d.uvarint()
	s.IdxVer = d.uvarint()
	s.Inflight = int(d.varint())
	s.OdFallback = int(d.varint())
	s.Dirty = d.bool()
	s.Started = d.bool()
	s.Finalized = d.bool()

	// Pending events.
	for i, n := 0, d.count(5); i < n; i++ {
		s.Events = append(s.Events, cluster.EventSnap{
			At:   sim.Time(d.varint()),
			Seq:  d.uvarint(),
			Kind: uint8(d.uvarint()),
			A:    d.varint(),
			B:    d.varint(),
		})
	}

	// Result.
	r := &s.Res
	r.Policy = cluster.Policy(d.uvarint())
	for _, p := range []*int{
		&r.Arrived, &r.BeyondHorizon, &r.Scheduled, &r.Departed, &r.Running,
		&r.StillPending, &r.Failed, &r.Displaced, &r.Reschedules, &r.Kills,
		&r.TransferredIn, &r.TransferredOut, &r.Adopted,
		&r.ScaleUps, &r.ScaleDowns, &r.ProvisionRetries,
		&r.OptimizerRuns, &r.OptimizerFull, &r.OptimizerMoves, &r.OptimizerGroups,
		&r.OptimizerCacheHits, &r.OptimizerCacheMisses,
		&r.PeakNodes, &r.FinalNodes,
		&r.ReconcileRounds, &r.ReconcileActions, &r.SpotProvisions,
		&r.SpotRevocations, &r.OnDemandFallbacks, &r.ZoneKills,
	} {
		*p = int(d.varint())
	}
	for i, n := 0, d.count(1); i < n; i++ {
		r.FleetTypes = append(r.FleetTypes, int(d.varint()))
	}
	for i, n := 0, d.count(1); i < n; i++ {
		r.ZoneSpread = append(r.ZoneSpread, int(d.varint()))
	}
	r.CostDollars = d.f64()
	r.FinalCostPerH = d.f64()
	r.CostSpotDollars = d.f64()
	r.CostOnDemandDollars = d.f64()
	r.TTSSum = d.dur()
	r.TTSMean = d.dur()
	r.TTSP95 = d.dur()
	r.TTSMax = d.dur()
	for i, n := 0, d.count(12); i < n; i++ {
		r.Samples = append(r.Samples, d.sample())
	}
	s.TrajWin = d.sample()

	// Time-to-schedule series.
	for i, n := 0, d.count(8); i < n; i++ {
		s.TTS.Samples = append(s.TTS.Samples, d.f64())
	}
	s.TTS.Sorted = d.bool()
	s.TTS.Sum = d.f64()
	s.TTS.SumSq = d.f64()

	// Fault injector.
	if d.bool() {
		inj := &faults.InjectorState{Counts: map[string]uint64{}}
		inj.Rand.Seed = d.varint()
		inj.Rand.Draws = d.uvarint()
		if d.err == nil && inj.Rand.Draws > maxRandDraws {
			return nil, fmt.Errorf("snapshot: injector RNG position %d exceeds the codec bound %d", inj.Rand.Draws, maxRandDraws)
		}
		for i, n := 0, d.count(2); i < n; i++ {
			inj.Rules = append(inj.Rules, faults.RuleCursor{Hits: d.uvarint(), Fires: d.uvarint()})
		}
		for i, n := 0, d.count(2); i < n; i++ {
			k := d.str()
			v := d.uvarint()
			if d.err != nil {
				return nil, d.err
			}
			if _, dup := inj.Counts[k]; dup {
				return nil, fmt.Errorf("snapshot: injector count %q repeated", k)
			}
			inj.Counts[k] = v
		}
		inj.Total = d.uvarint()
		s.Inj = inj
	}

	// Packing cache.
	if d.bool() {
		pc := &cloudsim.PackCacheState{Cap: int(d.varint())}
		for i, n := 0, d.count(2); i < n; i++ {
			pc.Entries = append(pc.Entries, cloudsim.PackCacheEntry{
				Input:  d.placedVMs(),
				Output: d.placedVMs(),
			})
			if d.err != nil {
				return nil, d.err
			}
		}
		pc.Hits = d.uvarint()
		pc.Misses = d.uvarint()
		pc.Evictions = d.uvarint()
		s.Pack = pc
	}

	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.b) {
		return nil, fmt.Errorf("snapshot: %d trailing bytes after the snapshot", len(d.b)-d.off)
	}
	return s, nil
}

// enc is the append-only encoder. Unlike dec it cannot fail.
type enc struct{ buf []byte }

func (e *enc) raw(b []byte)        { e.buf = append(e.buf, b...) }
func (e *enc) uvarint(v uint64)    { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *enc) varint(v int64)      { e.buf = binary.AppendVarint(e.buf, v) }
func (e *enc) dur(v time.Duration) { e.varint(int64(v)) }
func (e *enc) f64(v float64)       { e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v)) }
func (e *enc) bool(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}
func (e *enc) str(s string) {
	e.uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}
func (e *enc) i32s(v []int32) {
	e.uvarint(uint64(len(v)))
	for _, x := range v {
		e.varint(int64(x))
	}
}
func (e *enc) placedItems(items []cloudsim.PlacedItem) {
	e.uvarint(uint64(len(items)))
	for _, it := range items {
		e.str(it.Pod)
		e.f64(it.CPU)
		e.f64(it.Mem)
	}
}
func (e *enc) placedVMs(vms []cloudsim.PlacedVM) {
	e.uvarint(uint64(len(vms)))
	for _, vm := range vms {
		e.varint(int64(vm.Type))
		e.placedItems(vm.Items)
	}
}
func (e *enc) sample(s cluster.Sample) {
	e.varint(int64(s.T))
	e.f64(s.CostPerH)
	e.varint(int64(s.Pending))
	e.varint(int64(s.Nodes))
	e.f64(s.UsedCPU)
	e.f64(s.CapCPU)
	e.varint(int64(s.Points))
	e.f64(s.SumCostPerH)
	e.varint(int64(s.SumPending))
	e.varint(int64(s.SumNodes))
	e.f64(s.SumUsedCPU)
	e.f64(s.SumCapCPU)
}

// dec is the bounds-checked decoder: the first malformed read latches
// d.err and every later read returns a zero value, so call sites can
// decode a whole section and check once.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail(format string, args ...interface{}) {
	if d.err == nil {
		d.err = fmt.Errorf("snapshot: "+format+" at offset %d", append(args, d.off)...)
	}
}

func (d *dec) raw(n int) []byte {
	if d.err != nil || d.off+n > len(d.b) {
		d.fail("truncated (%d bytes short)", d.off+n-len(d.b))
		return make([]byte, n)
	}
	v := d.b[d.off : d.off+n]
	d.off += n
	return v
}

func (d *dec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("bad uvarint")
		return 0
	}
	d.off += n
	return v
}

func (d *dec) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail("bad varint")
		return 0
	}
	d.off += n
	return v
}

func (d *dec) dur() time.Duration { return time.Duration(d.varint()) }

func (d *dec) f64() float64 {
	if d.err != nil || d.off+8 > len(d.b) {
		d.fail("truncated float")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b[d.off:]))
	d.off += 8
	return v
}

func (d *dec) bool() bool {
	if d.err != nil || d.off >= len(d.b) {
		d.fail("truncated bool")
		return false
	}
	v := d.b[d.off]
	d.off++
	if v > 1 {
		d.fail("bad bool %d", v)
		return false
	}
	return v == 1
}

// count reads an element count and rejects any value that could not fit
// in the remaining input at minBytes encoded bytes per element — the
// allocation guard that keeps a hostile length prefix from buying a
// giant make().
func (d *dec) count(minBytes int) int {
	v := d.uvarint()
	if d.err != nil {
		return 0
	}
	if v > uint64(len(d.b)-d.off)/uint64(minBytes)+1 {
		d.fail("count %d exceeds the remaining input", v)
		return 0
	}
	return int(v)
}

func (d *dec) str() string {
	n := d.count(1)
	if d.err != nil {
		return ""
	}
	return string(d.raw(n))
}

func (d *dec) i32s() []int32 {
	n := d.count(1)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]int32, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, int32(d.varint()))
	}
	return out
}

func (d *dec) placedItems() []cloudsim.PlacedItem {
	n := d.count(17) // 1-byte pod id length + two 8-byte floats
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]cloudsim.PlacedItem, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, cloudsim.PlacedItem{Pod: d.str(), CPU: d.f64(), Mem: d.f64()})
	}
	return out
}

func (d *dec) sample() cluster.Sample {
	return cluster.Sample{
		T:           sim.Time(d.varint()),
		CostPerH:    d.f64(),
		Pending:     int(d.varint()),
		Nodes:       int(d.varint()),
		UsedCPU:     d.f64(),
		CapCPU:      d.f64(),
		Points:      int(d.varint()),
		SumCostPerH: d.f64(),
		SumPending:  int(d.varint()),
		SumNodes:    int(d.varint()),
		SumUsedCPU:  d.f64(),
		SumCapCPU:   d.f64(),
	}
}

func (d *dec) placedVMs() []cloudsim.PlacedVM {
	n := d.count(2)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]cloudsim.PlacedVM, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, cloudsim.PlacedVM{Type: int(d.varint()), Items: d.placedItems()})
	}
	return out
}
