package snapshot

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"nestless/internal/cluster"
	"nestless/internal/sim"
	"nestless/internal/telemetry"
)

// The snapshot-equivalence suite: the tentpole's gate. For every leg of
// the matrix (policy × churn × faults × scheduler mode) and for
// adversarial snapshot instants (an exact tick/sample multiple, one
// nanosecond either side of it, and an unaligned mid-epoch time), a run
// that is snapshotted, restored and continued must be byte-identical to
// the run that was never interrupted: same Result (reflect.DeepEqual,
// floats included), same world digest, same text telemetry. The
// Encode/Decode leg additionally proves the binary codec is lossless
// and canonical.

// snapTimes are the capture instants, chosen to land exactly on the
// autoscaler tick + trajectory sample boundary (2h is a multiple of
// both ScaleEvery and the default SampleEvery=horizon/12=20m), one
// nanosecond before and after it, and at an unaligned instant.
func snapTimes() []sim.Time {
	two := sim.Time(2 * time.Hour)
	return []sim.Time{
		two,
		two - 1,
		two + 1,
		sim.Time(1*time.Hour + 17*time.Minute + 13*time.Second),
	}
}

func TestSnapshotEquivalence(t *testing.T) {
	for _, spec := range equivalenceSpecs(t) {
		spec := spec
		t.Run(spec.name, func(t *testing.T) {
			t.Parallel()
			horizon := sim.Time(spec.cfg.Horizon)

			// The uninterrupted run, with telemetry.
			recA := telemetry.New()
			cfgA := spec.cfg
			cfgA.Rec = recA
			a := cluster.New(cfgA)
			a.Arm()
			a.Advance(horizon)
			resA := a.Finish()
			digA := a.Digest()
			if leaks := a.Leaks(); len(leaks) > 0 {
				t.Fatalf("uninterrupted world leaks: %v", leaks)
			}
			var bufA bytes.Buffer
			if err := recA.WriteTextTrace(&bufA); err != nil {
				t.Fatalf("text trace: %v", err)
			}

			for _, snapAt := range snapTimes() {
				snapAt := snapAt
				t.Run(time.Duration(snapAt).String(), func(t *testing.T) {
					// Interrupted: identical world, captured at snapAt,
					// restored (same recorder — cursors must carry over),
					// continued to the horizon.
					recB := telemetry.New()
					cfgB := spec.cfg
					cfgB.Rec = recB
					b := cluster.New(cfgB)
					b.Arm()
					b.Advance(snapAt)
					snap, err := b.Capture()
					if err != nil {
						t.Fatalf("Capture at %v: %v", snapAt, err)
					}

					// Codec leg: Encode is lossless and canonical.
					enc1, err := Encode(snap)
					if err != nil {
						t.Fatalf("Encode: %v", err)
					}
					dec, err := Decode(enc1)
					if err != nil {
						t.Fatalf("Decode: %v", err)
					}
					enc2, err := Encode(dec)
					if err != nil {
						t.Fatalf("re-Encode: %v", err)
					}
					if !bytes.Equal(enc1, enc2) {
						t.Fatalf("Encode(Decode(enc)) differs from enc (%d vs %d bytes)", len(enc2), len(enc1))
					}

					c, err := cluster.Restore(snap, cluster.RestoreOpts{Rec: recB})
					if err != nil {
						t.Fatalf("Restore: %v", err)
					}
					c.Advance(horizon)
					resB := c.Finish()
					digB := c.Digest()
					if leaks := c.Leaks(); len(leaks) > 0 {
						t.Fatalf("restored world leaks: %v", leaks)
					}
					if !reflect.DeepEqual(resA, resB) {
						t.Errorf("restored Result differs from uninterrupted:\n  uninterrupted: %+v\n  restored:      %+v", resA, resB)
					}
					if digA != digB {
						t.Errorf("restored digest %016x != uninterrupted %016x", digB, digA)
					}
					var bufB bytes.Buffer
					if err := recB.WriteTextTrace(&bufB); err != nil {
						t.Fatalf("text trace: %v", err)
					}
					if bufA.String() != bufB.String() {
						t.Errorf("telemetry text diverged after restore (%d vs %d bytes)", bufB.Len(), bufA.Len())
					}

					// Decoded leg: the world rebuilt from bytes (silent —
					// Result and digest are recorder-independent) matches too.
					d, err := cluster.Restore(dec, cluster.RestoreOpts{})
					if err != nil {
						t.Fatalf("Restore(decoded): %v", err)
					}
					d.Advance(horizon)
					resD := d.Finish()
					if leaks := d.Leaks(); len(leaks) > 0 {
						t.Fatalf("decoded world leaks: %v", leaks)
					}
					if !reflect.DeepEqual(resA, resD) {
						t.Errorf("decoded Result differs from uninterrupted:\n  uninterrupted: %+v\n  decoded:       %+v", resA, resD)
					}
					if dig := d.Digest(); dig != digA {
						t.Errorf("decoded digest %016x != uninterrupted %016x", dig, digA)
					}
				})
			}
		})
	}
}

// TestCaptureRefusesMidPass pins the Capture precondition: a world with
// a coalesced schedule pass pending (here provoked by a same-instant
// kill) refuses to capture instead of freezing a half-applied instant.
func TestCaptureRefusesMidPass(t *testing.T) {
	cfg := cluster.Config{
		Seed:      7,
		Pods:      churnPods(7, 10),
		Policy:    cluster.Hostlo,
		Horizon:   2 * time.Hour,
		BootDelay: 0,
	}
	c := cluster.New(cfg)
	c.Arm()
	c.Advance(sim.Time(time.Hour))
	live := c.LiveNodeNames()
	if len(live) == 0 {
		t.Fatal("no live nodes after an hour of churn")
	}
	if err := c.KillNodesNow(live); err != nil {
		t.Fatalf("KillNodesNow: %v", err)
	}
	// The kill re-queued pods and kicked the scheduler: the pass is
	// pending at the current instant.
	if _, err := c.Capture(); err == nil {
		t.Fatal("Capture succeeded with a schedule pass pending")
	}
	// Draining the instant makes the world capturable again.
	c.Advance(c.Now())
	if _, err := c.Capture(); err != nil {
		t.Fatalf("Capture after draining the instant: %v", err)
	}
}
