package snapshot

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"sync"
	"testing"
	"time"

	"nestless/internal/cluster"
)

func newTestService(t testing.TB) *Service {
	t.Helper()
	svc, err := NewService(BaseConfig{
		Seed:      5,
		Users:     15,
		Policy:    cluster.Hostlo,
		Horizon:   2 * time.Hour,
		SnapAt:    time.Hour,
		BootDelay: 30 * time.Second,
		FaultSpec: "node/*:crash:p=0.01",
	})
	if err != nil {
		t.Fatalf("NewService: %v", err)
	}
	return svc
}

// TestServiceBaselineMatchesBase: the "baseline" branch reproduces the
// uninterrupted base run — the service-level face of the equivalence
// invariant.
func TestServiceBaselineMatchesBase(t *testing.T) {
	svc := newTestService(t)
	rep, err := svc.Run(Query{Kind: "baseline"})
	if err != nil {
		t.Fatalf("baseline query: %v", err)
	}
	if len(rep.Leaks) > 0 {
		t.Fatalf("baseline branch leaks: %v", rep.Leaks)
	}
	if want := fmt.Sprintf("%016x", svc.BaseDigest()); rep.Digest != want {
		t.Errorf("baseline digest %s != base %s", rep.Digest, want)
	}
	base := svc.BaseResult()
	if rep.Arrived != base.Arrived || rep.Departed != base.Departed ||
		rep.Running != base.Running || rep.StillPending != base.StillPending ||
		rep.FinalNodes != base.FinalNodes || rep.CostDollars != base.CostDollars {
		t.Errorf("baseline reply %+v diverges from base result %+v", rep, base)
	}
}

// TestServiceRepliesDeterministic: asking the same question twice gets
// the same answer, bit for bit (wall-clock field aside).
func TestServiceRepliesDeterministic(t *testing.T) {
	svc := newTestService(t)
	queries := []Query{
		{Kind: "add-pods", Pods: 500, PodSeed: 7},
		{Kind: "switch-policy", Policy: "kubernetes"},
		{Kind: "kill-nodes", KillCount: 2},
	}
	for _, q := range queries {
		a, err := svc.Run(q)
		if err != nil {
			t.Fatalf("%s: %v", q.Kind, err)
		}
		b, err := svc.Run(q)
		if err != nil {
			t.Fatalf("%s (repeat): %v", q.Kind, err)
		}
		a.ElapsedMS, b.ElapsedMS = 0, 0
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: replies differ across identical queries:\n  first:  %+v\n  second: %+v", q.Kind, a, b)
		}
	}
}

// TestServiceConcurrentQueries: many goroutines hammer the one shared
// snapshot with mixed branch kinds. Every branch must succeed, stay
// leak-free, and agree with every other branch that asked the same
// question. CI runs this under -race.
func TestServiceConcurrentQueries(t *testing.T) {
	svc := newTestService(t)
	queries := []Query{
		{Kind: "baseline"},
		{Kind: "add-pods", Pods: 300, PodSeed: 11},
		{Kind: "switch-policy", Policy: "kubernetes"},
		{Kind: "kill-nodes", KillCount: 1},
	}
	const rounds = 30 // 120 queries total
	replies := make([]*Reply, rounds*len(queries))
	errs := make([]error, rounds*len(queries))
	var wg sync.WaitGroup
	for r := 0; r < rounds; r++ {
		for qi := range queries {
			wg.Add(1)
			go func(slot, qi int) {
				defer wg.Done()
				replies[slot], errs[slot] = svc.Run(queries[qi])
			}(r*len(queries)+qi, qi)
		}
	}
	wg.Wait()
	for slot, err := range errs {
		if err != nil {
			t.Fatalf("query %d: %v", slot, err)
		}
		if len(replies[slot].Leaks) > 0 {
			t.Fatalf("query %d leaks: %v", slot, replies[slot].Leaks)
		}
	}
	// Same question, same answer — across all rounds.
	for qi := range queries {
		first := replies[qi]
		for r := 1; r < rounds; r++ {
			got := replies[r*len(queries)+qi]
			if got.Digest != first.Digest {
				t.Errorf("kind %s: round %d digest %s != round 0 %s", queries[qi].Kind, r, got.Digest, first.Digest)
			}
		}
	}
	st := svc.Stats()
	if st.Queries != uint64(rounds*len(queries)) {
		t.Errorf("stats count %d queries, want %d", st.Queries, rounds*len(queries))
	}
	if st.WarmHits+st.WarmMisses == 0 {
		t.Error("no packing-cache probes across any Hostlo branch — warm cache never consulted")
	}
	if st.WarmHitRate < 0 || st.WarmHitRate > 1 {
		t.Errorf("warm hit rate %v out of [0,1]", st.WarmHitRate)
	}
	t.Logf("warm cache: %d hits / %d misses (rate %.2f), snapshot %d bytes",
		st.WarmHits, st.WarmMisses, st.WarmHitRate, st.SnapshotB)
}

// TestServiceHTTP drives the JSON face end to end.
func TestServiceHTTP(t *testing.T) {
	svc := newTestService(t)
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	post := func(body string) (*http.Response, map[string]interface{}) {
		t.Helper()
		resp, err := http.Post(srv.URL+"/whatif", "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatalf("POST /whatif: %v", err)
		}
		defer resp.Body.Close()
		var m map[string]interface{}
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatalf("decode reply: %v", err)
		}
		return resp, m
	}

	resp, m := post(`{"kind":"baseline"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("baseline: status %d (%v)", resp.StatusCode, m)
	}
	if want := fmt.Sprintf("%016x", svc.BaseDigest()); m["digest"] != want {
		t.Errorf("baseline digest %v != %s", m["digest"], want)
	}

	resp, m = post(`{"kind":"defragment-the-moon"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown kind: status %d, want 400", resp.StatusCode)
	}
	if m["error"] == "" {
		t.Error("unknown kind: no error message")
	}

	for _, path := range []string{"/stats", "/base"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		var m map[string]interface{}
		err = json.NewDecoder(resp.Body).Decode(&m)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d, err %v", path, resp.StatusCode, err)
		}
	}
	st := svc.Stats()
	if st.Queries != 1 || st.Errors != 1 {
		t.Errorf("stats: %d queries / %d errors, want 1 / 1", st.Queries, st.Errors)
	}
}

// TestServiceScale100K is the acceptance-scale run: a ~100k-pod base
// world serving 100+ concurrent forked queries. Heavy, so gated behind
// SNAP_100K=1 (CI smoke-runs it like the BENCH_1M lifecycle gate).
func TestServiceScale100K(t *testing.T) {
	if os.Getenv("SNAP_100K") == "" {
		t.Skip("set SNAP_100K=1 to run the 100k-pod service scale test")
	}
	start := time.Now()
	svc, err := NewService(BaseConfig{
		Seed:      1,
		Users:     19000,
		Policy:    cluster.Hostlo,
		Horizon:   2 * time.Hour,
		SnapAt:    time.Hour,
		BootDelay: 30 * time.Second,
	})
	if err != nil {
		t.Fatalf("NewService: %v", err)
	}
	st := svc.Stats()
	if st.BasePods < 100_000 {
		t.Fatalf("base world has %d pods, want >= 100k", st.BasePods)
	}
	t.Logf("base ready in %v: %d pods, snapshot %d bytes", time.Since(start).Round(time.Millisecond), st.BasePods, st.SnapshotB)

	queries := []Query{
		{Kind: "baseline"},
		{Kind: "add-pods", Pods: 10_000, PodSeed: 42},
		{Kind: "switch-policy", Policy: "kubernetes"},
		{Kind: "kill-nodes", KillCount: 50},
	}
	const total = 104
	replies := make([]*Reply, total)
	errs := make([]error, total)
	var wg sync.WaitGroup
	start = time.Now()
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			replies[i], errs[i] = svc.Run(queries[i%len(queries)])
		}(i)
	}
	wg.Wait()
	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("query %d: %v", i, errs[i])
		}
		if len(replies[i].Leaks) > 0 {
			t.Fatalf("query %d leaks: %v", i, replies[i].Leaks)
		}
	}
	for i := len(queries); i < total; i++ {
		if replies[i].Digest != replies[i%len(queries)].Digest {
			t.Errorf("query %d digest %s != first-of-kind %s", i, replies[i].Digest, replies[i%len(queries)].Digest)
		}
	}
	st = svc.Stats()
	t.Logf("%d branch queries in %v — warm cache %d hits / %d misses (rate %.2f)",
		total, time.Since(start).Round(time.Millisecond), st.WarmHits, st.WarmMisses, st.WarmHitRate)
}
