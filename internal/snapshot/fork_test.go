package snapshot

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"nestless/internal/cluster"
	"nestless/internal/sim"
	"nestless/internal/trace"
)

// Fork isolation: N branches restored concurrently from one shared
// snapshot, each mutating its own world (adoption, kills, policy
// switches), must (a) produce exactly the result a serial from-scratch
// restore with the same delta produces, (b) leave the parent snapshot
// bit-unchanged (its re-encoding is byte-identical), and (c) leave the
// parent world able to continue to the digest of a never-forked run.
// The race detector (CI runs this package under -race) turns any
// accidental sharing of mutable state into a failure.

// branchDelta applies fork i's mutation to its restored world and
// returns the RestoreOpts it needs. Deterministic per index.
func branchDelta(i int) (cluster.RestoreOpts, func(c *cluster.Cluster) error) {
	switch i % 4 {
	case 0: // pure continuation
		return cluster.RestoreOpts{}, func(*cluster.Cluster) error { return nil }
	case 1: // adopt a burst of extra pods
		return cluster.RestoreOpts{}, func(c *cluster.Cluster) error {
			return c.AdoptPods(forkPods(i, 60))
		}
	case 2: // kill the two oldest live nodes
		return cluster.RestoreOpts{}, func(c *cluster.Cluster) error {
			live := c.LiveNodeNames()
			if len(live) < 2 {
				return fmt.Errorf("fork %d: only %d live nodes", i, len(live))
			}
			return c.KillNodesNow(live[:2])
		}
	default: // switch the placement policy
		p := cluster.Kubernetes
		return cluster.RestoreOpts{Policy: &p}, func(*cluster.Cluster) error { return nil }
	}
}

// forkPods derives fork i's adopted pods: IDs disjoint from every trace
// workload and every other fork.
func forkPods(i, n int) []trace.Pod {
	rng := sim.NewRand(int64(1000 + i))
	pods := make([]trace.Pod, n)
	for j := range pods {
		pods[j] = trace.Pod{
			ID: fmt.Sprintf("fork%d-p%d", i, j),
			Containers: []trace.Container{{
				CPU: rng.Uniform(0.02, 0.3),
				Mem: rng.Uniform(0.02, 0.3),
			}},
			Lifetime: time.Duration(rng.Exp(float64(30 * time.Minute))),
		}
	}
	return pods
}

type branchOut struct {
	res    cluster.Result
	digest uint64
	leaks  []string
	err    error
}

// runBranch restores a branch from snap, applies fork i's delta, and
// continues to the horizon.
func runBranch(snap *cluster.Snapshot, i int, horizon sim.Time) branchOut {
	opts, delta := branchDelta(i)
	c, err := cluster.Restore(snap, opts)
	if err != nil {
		return branchOut{err: fmt.Errorf("fork %d restore: %w", i, err)}
	}
	if err := delta(c); err != nil {
		return branchOut{err: err}
	}
	c.Advance(horizon)
	return branchOut{res: c.Finish(), digest: c.Digest(), leaks: c.Leaks()}
}

func TestForkIsolationConcurrent(t *testing.T) {
	const forks = 16
	cfg := cluster.Config{
		Seed:      21,
		Pods:      churnPods(21, 20),
		Policy:    cluster.Hostlo,
		Horizon:   4 * time.Hour,
		BootDelay: 30 * time.Second,
		Faults:    mustSpec(t, "node/*:crash:p=0.02;node/provision:fail:p=0.1"),
	}
	horizon := sim.Time(cfg.Horizon)
	snapAt := sim.Time(2 * time.Hour)

	// The never-forked control run.
	control := cluster.New(cfg)
	control.Arm()
	control.Advance(horizon)
	controlRes := control.Finish()
	controlDig := control.Digest()

	// The parent world, captured at snapAt.
	parent := cluster.New(cfg)
	parent.Arm()
	parent.Advance(snapAt)
	snap, err := parent.Capture()
	if err != nil {
		t.Fatalf("Capture: %v", err)
	}
	encBefore, err := Encode(snap)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}

	// N concurrent branches off the one shared snapshot.
	concurrent := make([]branchOut, forks)
	var wg sync.WaitGroup
	for i := 0; i < forks; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			concurrent[i] = runBranch(snap, i, horizon)
		}(i)
	}
	wg.Wait()

	// Serial re-runs with the same deltas must match the concurrent
	// branches exactly: concurrency is wall-clock only.
	for i := 0; i < forks; i++ {
		got := concurrent[i]
		if got.err != nil {
			t.Fatalf("concurrent fork %d: %v", i, got.err)
		}
		if len(got.leaks) > 0 {
			t.Fatalf("concurrent fork %d leaks: %v", i, got.leaks)
		}
		want := runBranch(snap, i, horizon)
		if want.err != nil {
			t.Fatalf("serial fork %d: %v", i, want.err)
		}
		if !reflect.DeepEqual(got.res, want.res) {
			t.Errorf("fork %d: concurrent Result differs from serial:\n  concurrent: %+v\n  serial:     %+v", i, got.res, want.res)
		}
		if got.digest != want.digest {
			t.Errorf("fork %d: concurrent digest %016x != serial %016x", i, got.digest, want.digest)
		}
	}

	// Pure-continuation branches must reproduce the control run.
	for i := 0; i < forks; i += 4 {
		if concurrent[i].digest != controlDig {
			t.Errorf("fork %d (baseline): digest %016x != control %016x", i, concurrent[i].digest, controlDig)
		}
		if !reflect.DeepEqual(concurrent[i].res, controlRes) {
			t.Errorf("fork %d (baseline): Result differs from control", i)
		}
	}

	// The snapshot the branches shared is bit-unchanged.
	encAfter, err := Encode(snap)
	if err != nil {
		t.Fatalf("re-Encode: %v", err)
	}
	if !bytes.Equal(encBefore, encAfter) {
		t.Fatal("branch queries mutated the shared snapshot")
	}

	// And the parent world, which sat parked through all of it, still
	// continues to the control digest.
	reSnap, err := parent.Capture()
	if err != nil {
		t.Fatalf("parent re-Capture: %v", err)
	}
	encParent, err := Encode(reSnap)
	if err != nil {
		t.Fatalf("parent Encode: %v", err)
	}
	if !bytes.Equal(encBefore, encParent) {
		t.Fatal("branch queries mutated the parent world")
	}
	parent.Advance(horizon)
	parentRes := parent.Finish()
	if dig := parent.Digest(); dig != controlDig {
		t.Errorf("parent continuation digest %016x != control %016x", dig, controlDig)
	}
	if !reflect.DeepEqual(parentRes, controlRes) {
		t.Errorf("parent continuation Result differs from control")
	}
}

// TestForkAdoptionConservation pins the Leaks fix the Adopted counter
// exists for: a branch that adopts pods and then loses nodes must still
// balance the conservation audit — every adopted pod is departed,
// running, pending or failed at the horizon, never lost.
func TestForkAdoptionConservation(t *testing.T) {
	cfg := cluster.Config{
		Seed:      31,
		Pods:      churnPods(31, 15),
		Policy:    cluster.Hostlo,
		Horizon:   3 * time.Hour,
		BootDelay: 30 * time.Second,
		Faults:    mustSpec(t, "node/*:crash:p=0.05"),
	}
	c := cluster.New(cfg)
	c.Arm()
	c.Advance(sim.Time(90 * time.Minute))
	branch, err := c.Fork(cluster.RestoreOpts{})
	if err != nil {
		t.Fatalf("Fork: %v", err)
	}
	if err := branch.AdoptPods(forkPods(99, 200)); err != nil {
		t.Fatalf("AdoptPods: %v", err)
	}
	live := branch.LiveNodeNames()
	if len(live) > 1 {
		if err := branch.KillNodesNow(live[:len(live)/2]); err != nil {
			t.Fatalf("KillNodesNow: %v", err)
		}
	}
	branch.Advance(sim.Time(cfg.Horizon))
	res := branch.Finish()
	if leaks := branch.Leaks(); len(leaks) > 0 {
		t.Fatalf("adoption+kill branch leaks: %v", leaks)
	}
	if res.Adopted != 200 {
		t.Errorf("Adopted = %d, want 200", res.Adopted)
	}
	// Duplicate adoption is rejected up front.
	branch2, err := c.Fork(cluster.RestoreOpts{})
	if err != nil {
		t.Fatalf("second Fork: %v", err)
	}
	pods := forkPods(99, 1)
	if err := branch2.AdoptPods(pods); err != nil {
		t.Fatalf("AdoptPods: %v", err)
	}
	if err := branch2.AdoptPods(pods); err == nil {
		t.Fatal("duplicate AdoptPods succeeded")
	}
}
