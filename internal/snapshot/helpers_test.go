package snapshot

import (
	"testing"
	"time"

	"nestless/internal/cluster"
	"nestless/internal/faults"
	"nestless/internal/trace"
)

// churnPods generates the merged multi-tenant churn workload every test
// world runs: pod IDs are unique across users, so one cluster can hold
// the whole population.
func churnPods(seed int64, users int) []trace.Pod {
	us := trace.Generate(trace.GenConfig{
		Seed:              seed,
		Users:             users,
		MeanPodsPerUser:   6,
		HeavyUserFraction: 0.2,
		MeanArrivalGap:    2 * time.Minute,
		MeanLifetime:      45 * time.Minute,
	})
	var pods []trace.Pod
	for _, u := range us {
		pods = append(pods, u.Pods...)
	}
	return pods
}

// mustSpec parses a fault spec or fails the test.
func mustSpec(t testing.TB, spec string) *faults.Schedule {
	t.Helper()
	s, err := faults.ParseSpec(spec)
	if err != nil {
		t.Fatalf("ParseSpec(%q): %v", spec, err)
	}
	return s
}

// worldSpec is one leg of the equivalence matrix.
type worldSpec struct {
	name string
	cfg  cluster.Config
}

// equivalenceSpecs builds the matrix: both policies, churn, faults
// (provisioning failures and node kills mid-run), and the reference
// scheduler (whose pending queue snapshots in the other representation).
func equivalenceSpecs(t testing.TB) []worldSpec {
	const horizon = 4 * time.Hour
	base := func(seed int64) cluster.Config {
		return cluster.Config{
			Seed:      seed,
			Pods:      churnPods(seed, 25),
			Horizon:   horizon,
			BootDelay: 30 * time.Second,
		}
	}
	kube := base(11)
	hostlo := base(12)
	hostlo.Policy = cluster.Hostlo
	kubeFaults := base(13)
	kubeFaults.Faults = mustSpec(t, "node/*:crash:p=0.02;node/provision:fail:p=0.1")
	hostloFaults := base(14)
	hostloFaults.Policy = cluster.Hostlo
	hostloFaults.Faults = mustSpec(t, "node/*:crash:p=0.03;node/provision:delay:p=0.2:d=30s")
	kubeRef := base(15)
	kubeRef.Reference = true
	return []worldSpec{
		{"kube", kube},
		{"hostlo", hostlo},
		{"kube-faults", kubeFaults},
		{"hostlo-faults", hostloFaults},
		{"kube-reference", kubeRef},
	}
}
