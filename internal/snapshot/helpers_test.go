package snapshot

import (
	"testing"
	"time"

	"nestless/internal/cloud"
	"nestless/internal/cluster"
	"nestless/internal/faults"
	"nestless/internal/trace"
)

// churnPods generates the merged multi-tenant churn workload every test
// world runs: pod IDs are unique across users, so one cluster can hold
// the whole population.
func churnPods(seed int64, users int) []trace.Pod {
	us := trace.Generate(trace.GenConfig{
		Seed:              seed,
		Users:             users,
		MeanPodsPerUser:   6,
		HeavyUserFraction: 0.2,
		MeanArrivalGap:    2 * time.Minute,
		MeanLifetime:      45 * time.Minute,
	})
	var pods []trace.Pod
	for _, u := range us {
		pods = append(pods, u.Pods...)
	}
	return pods
}

// mustSpec parses a fault spec or fails the test.
func mustSpec(t testing.TB, spec string) *faults.Schedule {
	t.Helper()
	s, err := faults.ParseSpec(spec)
	if err != nil {
		t.Fatalf("ParseSpec(%q): %v", spec, err)
	}
	return s
}

// worldSpec is one leg of the equivalence matrix.
type worldSpec struct {
	name string
	cfg  cluster.Config
}

// equivalenceSpecs builds the matrix: both policies, churn, faults
// (provisioning failures and node kills mid-run), the reference
// scheduler (whose pending queue snapshots in the other
// representation), and the cloud model's spot-revocation and zone-drill
// chaos (whose zone/spot node state and od-fallback credit ride the
// snapshot).
func equivalenceSpecs(t testing.TB) []worldSpec {
	const horizon = 4 * time.Hour
	base := func(seed int64) cluster.Config {
		return cluster.Config{
			Seed:      seed,
			Pods:      churnPods(seed, 25),
			Horizon:   horizon,
			BootDelay: 30 * time.Second,
		}
	}
	kube := base(11)
	hostlo := base(12)
	hostlo.Policy = cluster.Hostlo
	kubeFaults := base(13)
	kubeFaults.Faults = mustSpec(t, "node/*:crash:p=0.02;node/provision:fail:p=0.1")
	hostloFaults := base(14)
	hostloFaults.Policy = cluster.Hostlo
	hostloFaults.Faults = mustSpec(t, "node/*:crash:p=0.03;node/provision:delay:p=0.2:d=30s")
	kubeRef := base(15)
	kubeRef.Reference = true
	gcp, err := cloud.Resolve(cloud.Options{
		Spec:     "gcp:n2",
		Zones:    3,
		ZonesSet: true,
		SpotFrac: 0.6, SpotFracSet: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	applyCloud := func(cfg *cluster.Config, spotFrac float64) {
		cfg.Catalog = gcp.Catalog.Types
		cfg.Zones = gcp.Zones
		cfg.ZoneNames = gcp.ZoneNames
		cfg.SpotFrac = spotFrac
		cfg.SpotDiscount = gcp.SpotDiscount
	}
	spotChaos := base(16)
	spotChaos.Policy = cluster.Hostlo
	spotChaos.Faults = mustSpec(t, "spot/*:crash:p=0.05;node/provision:fail:p=0.1")
	applyCloud(&spotChaos, 0.6)
	zoneDrill := base(17)
	zoneDrill.Faults = mustSpec(t, "zone/us-central1-b:crash:p=0.3;node/*:crash:p=0.01")
	applyCloud(&zoneDrill, 0)
	return []worldSpec{
		{"kube", kube},
		{"hostlo", hostlo},
		{"kube-faults", kubeFaults},
		{"hostlo-faults", hostloFaults},
		{"kube-reference", kubeRef},
		{"hostlo-spot-chaos", spotChaos},
		{"kube-zone-drill", zoneDrill},
	}
}
