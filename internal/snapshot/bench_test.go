package snapshot

import (
	"testing"
	"time"

	"nestless/internal/cluster"
	"nestless/internal/sim"
)

// benchWorld builds the shared base for the fork benchmarks: a
// 200-user Hostlo world with faults, advanced to mid-horizon — large
// enough that Capture walks a real fleet, queue and packing cache,
// small enough that a restore-and-continue iteration stays cheap.
func benchWorld(b *testing.B) *cluster.Cluster {
	b.Helper()
	cfg := cluster.Config{
		Seed:      42,
		Pods:      churnPods(42, 200),
		Policy:    cluster.Hostlo,
		Horizon:   4 * time.Hour,
		BootDelay: 30 * time.Second,
		Faults:    mustSpec(b, "node/*:crash:p=0.02;node/provision:fail:p=0.1"),
	}
	c := cluster.New(cfg)
	c.Arm()
	c.Advance(sim.Time(2 * time.Hour))
	return c
}

// BenchmarkSnapshotFork measures the three legs of the what-if loop:
// capturing a running world, round-tripping it through the binary
// codec, and restoring a branch that continues to the horizon. Every
// leg reports forks/s — the service-facing rate — which the CI gate
// tracks against BENCH_core.json.
func BenchmarkSnapshotFork(b *testing.B) {
	b.Run("capture", func(b *testing.B) {
		c := benchWorld(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.Capture(); err != nil {
				b.Fatalf("Capture: %v", err)
			}
		}
		b.StopTimer()
		if secs := b.Elapsed().Seconds(); secs > 0 {
			b.ReportMetric(float64(b.N)/secs, "forks/s")
		}
	})

	b.Run("codec", func(b *testing.B) {
		c := benchWorld(b)
		snap, err := c.Capture()
		if err != nil {
			b.Fatalf("Capture: %v", err)
		}
		enc, err := Encode(snap)
		if err != nil {
			b.Fatalf("Encode: %v", err)
		}
		b.SetBytes(int64(len(enc)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e, err := Encode(snap)
			if err != nil {
				b.Fatalf("Encode: %v", err)
			}
			if _, err := Decode(e); err != nil {
				b.Fatalf("Decode: %v", err)
			}
		}
		b.StopTimer()
		if secs := b.Elapsed().Seconds(); secs > 0 {
			b.ReportMetric(float64(b.N)/secs, "forks/s")
		}
	})

	b.Run("restore-continue", func(b *testing.B) {
		c := benchWorld(b)
		snap, err := c.Capture()
		if err != nil {
			b.Fatalf("Capture: %v", err)
		}
		horizon := sim.Time(4 * time.Hour)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			br, err := cluster.Restore(snap, cluster.RestoreOpts{})
			if err != nil {
				b.Fatalf("Restore: %v", err)
			}
			br.Advance(horizon)
			if res := br.Finish(); res.Arrived == 0 {
				b.Fatal("empty branch result")
			}
		}
		b.StopTimer()
		if secs := b.Elapsed().Seconds(); secs > 0 {
			b.ReportMetric(float64(b.N)/secs, "forks/s")
		}
	})
}
