package nestless

// The benchmarks below regenerate every table and figure of the paper's
// evaluation section (§5), one benchmark per artefact, plus ablations of
// the design choices called out in DESIGN.md §6. Absolute numbers come
// from the calibrated simulator (see internal/netsim/costs.go); the
// paper-vs-measured comparison lives in EXPERIMENTS.md.
//
// Reported custom metrics use ns/op semantics only incidentally; the
// interesting outputs are the ReportMetric series (Mbps, µs, $/h, …).

import (
	"testing"
	"time"

	"nestless/internal/cloudsim"
	"nestless/internal/figures"
	"nestless/internal/hostlo"
	"nestless/internal/netperf"
	"nestless/internal/scenario"
	"nestless/internal/trace"
)

var benchOpts = figures.Opts{Seed: 42, Quick: true}

// --- Figures 2 and 4: BrFusion micro-benchmarks -------------------------

func BenchmarkFig2NestedVsSingle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := figures.Fig2(benchOpts)
		if len(tab.Rows) != 2 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkFig4BrFusionMicro(b *testing.B) {
	for _, mode := range []scenario.Mode{scenario.ModeNAT, scenario.ModeBrFusion, scenario.ModeNoCont} {
		b.Run(string(mode), func(b *testing.B) {
			var mbps, rtt float64
			for i := 0; i < b.N; i++ {
				sc, err := scenario.NewServerClient(42, mode, 5001, 7001)
				if err != nil {
					b.Fatal(err)
				}
				tp := netperf.RunTCPStream(sc.Eng, netperf.StreamConfig{
					Client: sc.Client, Server: sc.ServerNS,
					DialAddr: sc.DialAddr, Port: 5001, MsgSize: 1280,
					Warmup: 10 * time.Millisecond, Duration: 40 * time.Millisecond,
				})
				rr := netperf.RunUDPRR(sc.Eng, netperf.RRConfig{
					Client: sc.Client, Server: sc.ServerNS,
					DialAddr: sc.DialAddr, Port: 7001, MsgSize: 1280,
					Duration: 30 * time.Millisecond,
				})
				mbps, rtt = tp.ThroughputMbps, float64(rr.MeanRTT.Microseconds())
			}
			b.ReportMetric(mbps, "Mbps")
			b.ReportMetric(rtt, "rtt-µs")
		})
	}
}

// --- Figure 5–7: macro-benchmarks and CPU breakdowns ---------------------

func BenchmarkFig5BrFusionMacro(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := figures.Fig5(benchOpts)
		if len(tab.Rows) != 9 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkFig6KafkaCPU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := figures.Fig6(benchOpts); len(tab.Rows) != 3 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkFig7NginxCPU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := figures.Fig7(benchOpts); len(tab.Rows) != 3 {
			b.Fatal("bad table")
		}
	}
}

// --- Figure 8: container boot time ---------------------------------------

func BenchmarkFig8BootTime(b *testing.B) {
	for _, mode := range []scenario.Mode{scenario.ModeNAT, scenario.ModeBrFusion} {
		b.Run(string(mode), func(b *testing.B) {
			var median float64
			for i := 0; i < b.N; i++ {
				s := figures.BootSamples(figures.Opts{Seed: 42}, mode, 25)
				median = s.Median() * 1e3
			}
			b.ReportMetric(median, "boot-ms-p50")
		})
	}
}

// --- Figure 9 / Table 2: cost simulation ---------------------------------

func BenchmarkFig9CostSavings(b *testing.B) {
	users := trace.Generate(trace.DefaultConfig(42))
	catalog := cloudsim.Catalog()
	b.ResetTimer()
	var savers, maxRel float64
	for i := 0; i < b.N; i++ {
		res := cloudsim.Simulate(users, catalog)
		savers = res.SaversFraction() * 100
		maxRel = res.MaxRelSavings() * 100
	}
	b.ReportMetric(savers, "savers-%")
	b.ReportMetric(maxRel, "max-savings-%")
}

// --- Figure 10–15: Hostlo micro and macro ---------------------------------

func BenchmarkFig10HostloMicro(b *testing.B) {
	for _, mode := range []scenario.CCMode{scenario.CCSameNode, scenario.CCHostlo, scenario.CCNAT, scenario.CCOverlay} {
		b.Run(string(mode), func(b *testing.B) {
			var mbps, rtt float64
			for i := 0; i < b.N; i++ {
				pp, err := scenario.NewPodPair(42, mode, 5001, 7001)
				if err != nil {
					b.Fatal(err)
				}
				tp := netperf.RunTCPStream(pp.Eng, netperf.StreamConfig{
					Client: pp.ANS, Server: pp.BNS,
					DialAddr: pp.DialAddr, Port: 5001, MsgSize: 1024,
					Warmup: 10 * time.Millisecond, Duration: 40 * time.Millisecond,
				})
				rr := netperf.RunUDPRR(pp.Eng, netperf.RRConfig{
					Client: pp.ANS, Server: pp.BNS,
					DialAddr: pp.DialAddr, Port: 7001, MsgSize: 1024,
					Duration: 30 * time.Millisecond,
				})
				mbps, rtt = tp.ThroughputMbps, float64(rr.MeanRTT.Microseconds())
			}
			b.ReportMetric(mbps, "Mbps")
			b.ReportMetric(rtt, "rtt-µs")
		})
	}
}

func BenchmarkFig11MemcachedHostlo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := figures.Fig11(benchOpts); len(tab.Rows) != 4 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkFig13NginxHostlo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := figures.Fig13(benchOpts); len(tab.Rows) != 4 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkFig14MemcachedCPU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := figures.Fig14(benchOpts); len(tab.Rows) != 4 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkFig15NginxCPU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := figures.Fig15(benchOpts); len(tab.Rows) != 4 {
			b.Fatal("bad table")
		}
	}
}

// --- Ablations (DESIGN.md §6) ---------------------------------------------

// BenchmarkAblationHostloFanout compares the paper's reflect-to-all
// semantics with MAC-filtered unicast delivery.
func BenchmarkAblationHostloFanout(b *testing.B) {
	for _, mode := range []struct {
		name   string
		filter bool
	}{{"reflect-all", false}, {"filter-mac", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var mbps float64
			for i := 0; i < b.N; i++ {
				pp, err := scenario.NewPodPair(42, scenario.CCHostlo, 5001)
				if err != nil {
					b.Fatal(err)
				}
				if mode.filter {
					pp.HostloDev.SetMode(hostlo.FilterMAC)
				}
				tp := netperf.RunTCPStream(pp.Eng, netperf.StreamConfig{
					Client: pp.ANS, Server: pp.BNS,
					DialAddr: pp.DialAddr, Port: 5001, MsgSize: 1024,
					Warmup: 10 * time.Millisecond, Duration: 40 * time.Millisecond,
				})
				mbps = tp.ThroughputMbps
			}
			b.ReportMetric(mbps, "Mbps")
		})
	}
}

// BenchmarkAblationOverlayBatch sweeps the overlay's TX batching depth.
func BenchmarkAblationOverlayBatch(b *testing.B) {
	for _, batch := range []int{1, 4, 16} {
		b.Run(map[int]string{1: "batch-1", 4: "batch-4", 16: "batch-16"}[batch], func(b *testing.B) {
			var mbps, rtt float64
			for i := 0; i < b.N; i++ {
				pp, err := scenario.NewPodPair(42, scenario.CCOverlay, 5001, 7001)
				if err != nil {
					b.Fatal(err)
				}
				pp.Overlay.Batch = batch
				tp := netperf.RunTCPStream(pp.Eng, netperf.StreamConfig{
					Client: pp.ANS, Server: pp.BNS,
					DialAddr: pp.DialAddr, Port: 5001, MsgSize: 1024,
					Warmup: 10 * time.Millisecond, Duration: 40 * time.Millisecond,
				})
				rr := netperf.RunUDPRR(pp.Eng, netperf.RRConfig{
					Client: pp.ANS, Server: pp.BNS,
					DialAddr: pp.DialAddr, Port: 7001, MsgSize: 1024,
					Duration: 30 * time.Millisecond,
				})
				mbps, rtt = tp.ThroughputMbps, float64(rr.MeanRTT.Microseconds())
			}
			b.ReportMetric(mbps, "Mbps")
			b.ReportMetric(rtt, "rtt-µs")
		})
	}
}

// BenchmarkAblationStreamWindow sweeps the transport's in-flight window.
func BenchmarkAblationStreamWindow(b *testing.B) {
	for _, kb := range []int{64, 256, 1024} {
		b.Run(map[int]string{64: "win-64k", 256: "win-256k", 1024: "win-1m"}[kb], func(b *testing.B) {
			var mbps float64
			for i := 0; i < b.N; i++ {
				sc, err := scenario.NewServerClient(42, scenario.ModeBrFusion, 5001)
				if err != nil {
					b.Fatal(err)
				}
				sc.Net.Costs.StreamWindow = kb * 1024
				tp := netperf.RunTCPStream(sc.Eng, netperf.StreamConfig{
					Client: sc.Client, Server: sc.ServerNS,
					DialAddr: sc.DialAddr, Port: 5001, MsgSize: 1280,
					Warmup: 10 * time.Millisecond, Duration: 40 * time.Millisecond,
				})
				mbps = tp.ThroughputMbps
			}
			b.ReportMetric(mbps, "Mbps")
		})
	}
}

// BenchmarkAblationSchedulerPolicy compares packing policies' effect on
// the Hostlo savings result.
func BenchmarkAblationSchedulerPolicy(b *testing.B) {
	users := trace.Generate(trace.DefaultConfig(42))
	catalog := cloudsim.Catalog()
	for _, pol := range []struct {
		name string
		p    cloudsim.Policy
	}{{"most-requested", cloudsim.MostRequested}, {"least-requested", cloudsim.LeastRequested}} {
		b.Run(pol.name, func(b *testing.B) {
			var savers float64
			for i := 0; i < b.N; i++ {
				n, total := 0, 0
				for _, u := range users {
					r, err := cloudsim.SimulateUserPolicy(u, catalog, pol.p)
					if err != nil {
						continue
					}
					total++
					if r.SavingsAbs() > 1e-9 {
						n++
					}
				}
				savers = float64(n) / float64(total) * 100
			}
			b.ReportMetric(savers, "savers-%")
		})
	}
}

// BenchmarkAblationAckFrequency sweeps the transport's cumulative ACK
// frequency (per-segment vs batched ACKs).
func BenchmarkAblationAckFrequency(b *testing.B) {
	for _, every := range []int{1, 2, 4} {
		b.Run(map[int]string{1: "ack-1", 2: "ack-2", 4: "ack-4"}[every], func(b *testing.B) {
			var mbps float64
			for i := 0; i < b.N; i++ {
				sc, err := scenario.NewServerClient(42, scenario.ModeNAT, 5001)
				if err != nil {
					b.Fatal(err)
				}
				sc.Net.Costs.AckEvery = every
				tp := netperf.RunTCPStream(sc.Eng, netperf.StreamConfig{
					Client: sc.Client, Server: sc.ServerNS,
					DialAddr: sc.DialAddr, Port: 5001, MsgSize: 1280,
					Warmup: 10 * time.Millisecond, Duration: 40 * time.Millisecond,
				})
				mbps = tp.ThroughputMbps
			}
			b.ReportMetric(mbps, "Mbps")
		})
	}
}
